package bgp

import (
	"testing"

	"repro/internal/asn"
	"repro/internal/netutil"
)

// figure1Network builds the paper's Figure 1 scenario:
//
//	UCSD (7377) —customer→ CENIC (2152)
//	CENIC —customer→ Internet2 (11537)      [R&E]
//	CENIC —customer→ Lumen... simplified: CENIC —customer→ Cogent? No:
//	CENIC is also a customer of Level3 (3356) for commodity.
//	Internet2 —participant→ NYSERNet (3754) ... NYSERNet —→ Columbia (14)
//	Cogent (174) —provider→ Columbia (14); Cogent peers with 3356.
//
// Columbia receives routes to UCSD prefixes via NYSERNet (R&E, path
// 3754 11537 2152 7377) and via Cogent (commodity, path
// 174 3356 2152 7377) — equal lengths, so only localpref makes the
// R&E choice deterministic.
type figure1 struct {
	net *Network
	// router IDs
	ucsd, cenic, internet2, nysernet, columbia, cogent, level3 RouterID
}

func buildFigure1(columbiaREPref uint32) *figure1 {
	f := &figure1{net: NewNetwork()}
	ids := map[string]struct {
		id RouterID
		as asn.AS
	}{
		"UCSD":      {1, 7377},
		"CENIC":     {2, 2152},
		"Internet2": {3, 11537},
		"NYSERNet":  {4, 3754},
		"Columbia":  {5, 14},
		"Cogent":    {6, 174},
		"Level3":    {7, 3356},
	}
	for name, v := range ids {
		f.net.AddSpeaker(v.id, v.as, name)
	}
	f.ucsd, f.cenic, f.internet2 = 1, 2, 3
	f.nysernet, f.columbia, f.cogent, f.level3 = 4, 5, 6, 7

	cust := func(provider, customer RouterID) {
		f.net.Connect(provider, customer,
			PeerConfig{ // at provider, about customer
				ClassifyAs:      ClassCustomer,
				ImportLocalPref: LocalPrefCustomer,
				ExportAllow:     GaoRexfordExport(ClassCustomer),
			},
			PeerConfig{ // at customer, about provider
				ClassifyAs:      ClassProvider,
				ImportLocalPref: LocalPrefProvider,
				ExportAllow:     GaoRexfordExport(ClassProvider),
			})
	}
	// R&E chain: UCSD ← CENIC ← Internet2 ← NYSERNet ← Columbia.
	cust(f.cenic, f.ucsd)
	cust(f.internet2, f.cenic)
	cust(f.nysernet, f.columbia)
	// NYSERNet and CENIC are Internet2 participants (customers in the
	// routing sense).
	cust(f.internet2, f.nysernet)
	// Commodity: CENIC ← Level3, Level3 — Cogent peering,
	// Columbia ← Cogent.
	cust(f.level3, f.cenic)
	f.net.Connect(f.level3, f.cogent,
		PeerConfig{ClassifyAs: ClassPeer, ImportLocalPref: LocalPrefPeer, ExportAllow: GaoRexfordExport(ClassPeer)},
		PeerConfig{ClassifyAs: ClassPeer, ImportLocalPref: LocalPrefPeer, ExportAllow: GaoRexfordExport(ClassPeer)})
	// Columbia's session with Cogent (its commodity provider) with the
	// configurable import localpref, and with NYSERNet (its R&E path).
	f.net.Connect(f.cogent, f.columbia,
		PeerConfig{ClassifyAs: ClassCustomer, ImportLocalPref: LocalPrefCustomer, ExportAllow: GaoRexfordExport(ClassCustomer)},
		PeerConfig{ClassifyAs: ClassProvider, ImportLocalPref: LocalPrefProvider, ExportAllow: GaoRexfordExport(ClassProvider)})
	// Override Columbia's localpref toward NYSERNet: columbiaREPref.
	colNY := f.net.Speaker(f.columbia).Peer(f.nysernet)
	colNY.ImportLocalPref = columbiaREPref
	return f
}

var ucsdPrefix = netutil.MustParsePrefix("132.239.0.0/16")

func TestFigure1LocalPrefSelectsRE(t *testing.T) {
	// Columbia assigns a higher localpref to NYSERNet: it must select
	// the R&E route despite equal AS path lengths.
	f := buildFigure1(LocalPrefProvider + 20)
	f.net.Originate(f.ucsd, ucsdPrefix)
	f.net.RunToQuiescence()

	best := f.net.Speaker(f.columbia).Best(ucsdPrefix)
	if best == nil {
		t.Fatal("Columbia has no route to UCSD")
	}
	wantRE := asn.MustParsePath("3754 11537 2152 7377")
	wantComm := asn.MustParsePath("174 3356 2152 7377")
	// Sanity: both routes available, equal length.
	adj := f.net.Speaker(f.columbia).AdjInAll(ucsdPrefix)
	if len(adj) != 2 {
		t.Fatalf("Columbia has %d routes, want 2: %v", len(adj), adj)
	}
	var sawRE, sawComm bool
	for _, r := range adj {
		if r.Path.Equal(wantRE) {
			sawRE = true
		}
		if r.Path.Equal(wantComm) {
			sawComm = true
		}
	}
	if !sawRE || !sawComm {
		t.Fatalf("expected both Figure 1 paths, got %v", adj)
	}
	if !best.Path.Equal(wantRE) {
		t.Errorf("Columbia best = %v, want R&E path %v", best.Path, wantRE)
	}
}

func TestFigure1EqualLocalPrefTieBreaks(t *testing.T) {
	// With equal localpref the equal-length paths tie-break beyond
	// path length; crucially the choice is no longer policy-determined.
	f := buildFigure1(LocalPrefProvider)
	f.net.Originate(f.ucsd, ucsdPrefix)
	f.net.RunToQuiescence()
	best := f.net.Speaker(f.columbia).Best(ucsdPrefix)
	if best == nil {
		t.Fatal("Columbia has no route")
	}
	adj := f.net.Speaker(f.columbia).AdjInAll(ucsdPrefix)
	if len(adj) != 2 || adj[0].Path.Len() != adj[1].Path.Len() {
		t.Fatalf("want two equal-length candidates, got %v", adj)
	}
	if adj[0].LocalPref != adj[1].LocalPref {
		t.Fatalf("localprefs differ: %v", adj)
	}
}

func TestValleyFree(t *testing.T) {
	// Gao-Rexford export must prevent CENIC's provider routes from
	// reaching Internet2 (no valley paths): Internet2 must not learn a
	// route to a prefix originated by Cogent via its customer CENIC.
	f := buildFigure1(LocalPrefProvider)
	cogentPrefix := netutil.MustParsePrefix("38.0.0.0/8")
	f.net.Originate(f.cogent, cogentPrefix)
	f.net.RunToQuiescence()
	// CENIC learns it from Level3 (its provider).
	if f.net.Speaker(f.cenic).Best(cogentPrefix) == nil {
		t.Fatal("CENIC should reach Cogent's prefix via Level3")
	}
	// Internet2 must not hear it from CENIC (provider route). It has
	// no other path in this topology.
	if r := f.net.Speaker(f.internet2).Best(cogentPrefix); r != nil {
		t.Errorf("valley path leaked to Internet2: %v", r)
	}
}

func TestWithdrawPropagates(t *testing.T) {
	f := buildFigure1(LocalPrefProvider + 20)
	f.net.Originate(f.ucsd, ucsdPrefix)
	f.net.RunToQuiescence()
	if f.net.Speaker(f.columbia).Best(ucsdPrefix) == nil {
		t.Fatal("no route before withdraw")
	}
	f.net.WithdrawOrigination(f.ucsd, ucsdPrefix)
	f.net.RunToQuiescence()
	if r := f.net.Speaker(f.columbia).Best(ucsdPrefix); r != nil {
		t.Errorf("route survived withdrawal: %v", r)
	}
	for _, id := range f.net.Speakers() {
		if r := f.net.Speaker(id).Best(ucsdPrefix); r != nil && r.From != 0 {
			t.Errorf("speaker %d kept stale route %v", id, r)
		}
	}
}

func TestSetExportPrependLengthensPath(t *testing.T) {
	f := buildFigure1(LocalPrefProvider)
	f.net.Originate(f.ucsd, ucsdPrefix)
	f.net.RunToQuiescence()

	// UCSD prepends 3 extra copies toward CENIC; every downstream path
	// grows by 3.
	before := f.net.Speaker(f.columbia).AdjIn(ucsdPrefix, f.nysernet)
	if before == nil {
		t.Fatal("no R&E route before prepend")
	}
	f.net.SetExportPrepend(f.ucsd, f.cenic, 3)
	f.net.RunToQuiescence()
	after := f.net.Speaker(f.columbia).AdjIn(ucsdPrefix, f.nysernet)
	if after == nil {
		t.Fatal("no R&E route after prepend")
	}
	if after.Path.Len() != before.Path.Len()+3 {
		t.Errorf("path length %d, want %d", after.Path.Len(), before.Path.Len()+3)
	}
	if after.Path.PrependCount() != 3 {
		t.Errorf("PrependCount = %d, want 3", after.Path.PrependCount())
	}
	// Setting the same value again must be a silent no-op.
	ev := f.net.EventsProcessed()
	f.net.SetExportPrepend(f.ucsd, f.cenic, 3)
	f.net.RunToQuiescence()
	if f.net.EventsProcessed() != ev {
		t.Error("re-setting identical prepend generated updates")
	}
}

func TestRouteAgeTieBreak(t *testing.T) {
	// Two providers announce the same prefix with equal-length paths
	// and equal localpref; the route learned first must win, and a
	// re-announcement (attribute change) must reset its age.
	net := NewNetwork()
	net.AddSpeaker(1, 100, "dst")
	net.AddSpeaker(2, 200, "provA")
	net.AddSpeaker(3, 300, "provB")
	net.AddSpeaker(4, 400, "origin")
	flat := PeerConfig{ClassifyAs: ClassProvider, ImportLocalPref: LocalPrefProvider, ExportAllow: GaoRexfordExport(ClassProvider)}
	custUp := PeerConfig{ClassifyAs: ClassCustomer, ImportLocalPref: LocalPrefCustomer, ExportAllow: GaoRexfordExport(ClassCustomer)}
	net.Connect(2, 1, custUp, flat)
	net.Connect(3, 1, custUp, flat)
	net.Connect(4, 2, flat, custUp) // origin is customer of provA
	net.Connect(4, 3, flat, custUp) // and of provB
	// Make provA's path slower to arrive.
	net.Speaker(2).Peer(1).Delay = 10
	net.Speaker(3).Peer(1).Delay = 1

	p := netutil.MustParsePrefix("192.0.2.0/24")
	net.Originate(4, p)
	net.RunToQuiescence()

	best := net.Speaker(1).Best(p)
	if best == nil {
		t.Fatal("no route")
	}
	if best.From != 3 {
		t.Fatalf("best from %d, want 3 (older route)", best.From)
	}
	// provB's route is re-announced with a prepend, then reverted: the
	// age resets both times, so provA's untouched route becomes oldest
	// once its path is equal-length again.
	net.AdvanceTo(net.Now() + 3600)
	net.SetExportPrepend(3, 1, 1)
	net.RunToQuiescence()
	if best = net.Speaker(1).Best(p); best.From != 2 {
		t.Fatalf("after prepend, best from %d, want 2 (shorter path)", best.From)
	}
	net.AdvanceTo(net.Now() + 3600)
	net.SetExportPrepend(3, 1, 0)
	net.RunToQuiescence()
	if best = net.Speaker(1).Best(p); best.From != 2 {
		t.Errorf("after revert, best from %d, want 2 (now the older route)", best.From)
	}
}

func TestForwardPath(t *testing.T) {
	f := buildFigure1(LocalPrefProvider + 20)
	f.net.Originate(f.ucsd, ucsdPrefix)
	f.net.RunToQuiescence()
	path, ok := f.net.ForwardPath(f.columbia, ucsdPrefix)
	if !ok {
		t.Fatalf("ForwardPath failed: %v", path)
	}
	want := []RouterID{f.columbia, f.nysernet, f.internet2, f.cenic, f.ucsd}
	if len(path) != len(want) {
		t.Fatalf("path %v, want %v", path, want)
	}
	for i := range path {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
	// A speaker with no route.
	net2 := NewNetwork()
	net2.AddSpeaker(1, 1, "lonely")
	if _, ok := net2.ForwardPath(1, ucsdPrefix); ok {
		t.Error("ForwardPath should fail with no route")
	}
}

func TestCollectorRecordsChurn(t *testing.T) {
	f := buildFigure1(LocalPrefProvider)
	// Attach a collector to Cogent.
	col := f.net.AddSpeaker(99, 65000, "collector")
	col.Collector = true
	f.net.Connect(f.cogent, 99,
		PeerConfig{ClassifyAs: ClassPeer, ExportAllow: NewClassSet(ClassOwn, ClassCustomer, ClassPeer, ClassProvider)},
		PeerConfig{ClassifyAs: ClassPeer, ExportAllow: NewClassSet()})
	f.net.Originate(f.ucsd, ucsdPrefix)
	f.net.RunToQuiescence()

	if len(f.net.Churn.Records) == 0 {
		t.Fatal("collector saw no updates")
	}
	last := f.net.Churn.Records[len(f.net.Churn.Records)-1]
	if !last.Announce || last.Prefix != ucsdPrefix {
		t.Errorf("unexpected record %+v", last)
	}
	if last.PeerAS != 174 {
		t.Errorf("collector peer AS = %v, want 174", last.PeerAS)
	}
	if last.Path.Origin() != 7377 {
		t.Errorf("collected path %v should originate at 7377", last.Path)
	}
	// Collectors must not re-export: UCSD must not see a route via the
	// collector (it has no session, but also the collector must hold
	// but not propagate).
	if got := f.net.Speaker(99).Best(ucsdPrefix); got == nil {
		t.Error("collector should still select a best route locally")
	}
}

func TestStaticMatchesEngine(t *testing.T) {
	// The fixpoint solver and the event engine must agree on converged
	// best routes (modulo age-based ties, absent here).
	f := buildFigure1(LocalPrefProvider + 20)
	f.net.Originate(f.ucsd, ucsdPrefix)
	f.net.RunToQuiescence()

	res := f.net.SolveStatic(ucsdPrefix, []StaticOrigin{{Speaker: f.ucsd}})
	if !res.Converged {
		t.Fatal("static solver did not converge")
	}
	for _, id := range f.net.Speakers() {
		eng := f.net.Speaker(id).Best(ucsdPrefix)
		st := res.Best[id]
		switch {
		case eng == nil && st == nil:
		case eng == nil || st == nil:
			t.Errorf("speaker %d: engine=%v static=%v", id, eng, st)
		case !eng.Path.Equal(st.Path) || eng.LocalPref != st.LocalPref:
			t.Errorf("speaker %d: engine=%v static=%v", id, eng, st)
		}
	}
}

func TestStaticTwoOrigins(t *testing.T) {
	// Anycast-style: the measurement prefix originated both at UCSD
	// (stand-in R&E origin) and Cogent (stand-in commodity origin).
	f := buildFigure1(LocalPrefProvider + 20)
	p := netutil.MustParsePrefix("163.253.63.0/24")
	res := f.net.SolveStatic(p, []StaticOrigin{{Speaker: f.ucsd}, {Speaker: f.cogent}})
	if !res.Converged {
		t.Fatal("no convergence")
	}
	// Columbia prefers the R&E side (higher localpref via NYSERNet).
	best := res.Best[f.columbia]
	if best == nil {
		t.Fatal("Columbia unrouted")
	}
	if best.Path.Origin() != 7377 {
		t.Errorf("Columbia chose origin %v, want 7377 (R&E)", best.Path.Origin())
	}
	// Level3 hears the UCSD origination from its customer CENIC (a
	// Gao-Rexford-legal export) and prefers the customer route over
	// its peer route from Cogent.
	if b := res.Best[f.level3]; b == nil || b.Path.Origin() != 7377 || b.Class != ClassCustomer {
		t.Errorf("Level3 best = %v, want customer route to 7377", b)
	}
	// Cogent itself originates the prefix, so its own route wins
	// locally regardless of what Level3 tells it.
	if b := res.Best[f.cogent]; b == nil || b.Class != ClassOwn {
		t.Errorf("Cogent best = %v, want its own origination", b)
	}
}

func TestDuplicateAnnouncementSuppressed(t *testing.T) {
	f := buildFigure1(LocalPrefProvider)
	f.net.Originate(f.ucsd, ucsdPrefix)
	f.net.RunToQuiescence()
	n := f.net.EventsProcessed()
	// Re-originating identically must not generate any updates.
	f.net.Originate(f.ucsd, ucsdPrefix)
	f.net.RunToQuiescence()
	if f.net.EventsProcessed() != n {
		t.Errorf("idempotent re-origination generated %d events", f.net.EventsProcessed()-n)
	}
}

func TestTimeClock(t *testing.T) {
	tests := []struct {
		t    Time
		want string
	}{
		{0, "00:00:00"},
		{59, "00:00:59"},
		{3600, "01:00:00"},
		{3723, "01:02:03"},
		{-60, "-00:01:00"},
	}
	for _, tt := range tests {
		if got := tt.t.Clock(); got != tt.want {
			t.Errorf("Clock(%d) = %q, want %q", tt.t, got, tt.want)
		}
	}
}

func TestClassSet(t *testing.T) {
	s := NewClassSet(ClassOwn, ClassCustomer)
	if !s.Has(ClassOwn) || !s.Has(ClassCustomer) || s.Has(ClassPeer) {
		t.Error("ClassSet membership wrong")
	}
	s2 := s.With(ClassPeer)
	if !s2.Has(ClassPeer) || s.Has(ClassPeer) {
		t.Error("With should not mutate receiver")
	}
	for c := RouteClass(0); c < numRouteClasses; c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty String", c)
		}
	}
}
