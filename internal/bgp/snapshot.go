package bgp

// Engine-state serialization. Snapshot writes the complete dynamic
// state of a Network — RIBs, damping timers, MRAI batches, the
// in-flight event queue, churn log, incremental dirty-set, and work
// counters — into the versioned container of internal/snapshot;
// RestoreNetwork rehydrates it into a freshly built base network whose
// topology and policy match. The restored network is byte-identical in
// every observable output to the original: same messages at the same
// virtual times, same churn records, same RIB contents, same
// decision-cache hit pattern.
//
// Two invariants shape the format:
//
//   - Determinism. Every map is emitted under sorted keys and every
//     route reference is an index into a route table built by a fixed
//     canonical traversal, so two Snapshot calls on the same network
//     produce identical bytes (pinned by TestSnapshotDeterministic).
//
//   - Pointer identity. The engine relies on exact *Route aliasing:
//     sendExport stores one pointer into both the adj-RIB-out and the
//     queued event, and the incremental decision cache validates with
//     pointer (not value) comparison, including stale pointers
//     reachable only from the cache or the queue. The route table
//     assigns one index per distinct pointer, so aliasing — and the
//     cache's future hit/miss behavior — survives a round trip.
//
// Policy func values (ImportDeny, ExportFilter, ExportBestOf) cannot
// be serialized; they come from the base network, and a fingerprint
// section digests all static topology/policy so RestoreNetwork can
// refuse a base that was not built identically.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/asn"
	"repro/internal/bgp/pathtab"
	"repro/internal/netutil"
	snap "repro/internal/snapshot"
	"repro/internal/vtime"
)

// Engine snapshot section IDs. File order is meta, fingerprint,
// paths (v2+), routes, speakers, queue, churn, dirty; secPaths got the
// next free ID when v2 introduced it, so IDs are not positional.
const (
	secMeta        = 1
	secFingerprint = 2
	secRoutes      = 3
	secSpeakers    = 4
	secQueue       = 5
	secChurn       = 6
	secDirty       = 7
	secPaths       = 8
)

// ErrSnapshotMismatch reports that a snapshot's topology/policy
// fingerprint does not match the base network it is being restored
// into.
var ErrSnapshotMismatch = errors.New("bgp: snapshot fingerprint does not match base network")

// Snapshot serializes the network's complete dynamic state to w in the
// RBGP format (see internal/snapshot/FORMAT.md). Snapshotting inside a
// Batch is an error: batched dirty-pair work has no stable on-disk
// meaning before the drain.
func (n *Network) Snapshot(w io.Writer) error {
	data, err := n.snapshotBytes()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

func (n *Network) snapshotBytes() ([]byte, error) {
	if n.batchDepth != 0 {
		return nil, errors.New("bgp: Snapshot called inside Batch")
	}
	// Pin the arena materialization caches: the route index numbers
	// pointers in one walk and the speaker/queue encoders re-walk the
	// same stores expecting identical pointers, so the bounded cache
	// must not epoch-clear between them.
	unpin := n.pinMatCaches()
	defer unpin()
	ri := newRouteIndex(n)
	// The v2 path table: paths referenced from the route table and the
	// churn log are interned in first-appearance order (route-table
	// order, then churn order), so identical networks produce identical
	// tables. Encoding the referers first populates the table; the
	// sections are then written in file order.
	pt := pathtab.New()
	routesPayload := encodeRoutes(ri, pt)
	churnPayload := encodeChurn(n.Churn.Records, pt)
	sw := snap.NewWriter(snap.EngineMagic, snap.EngineVersion)
	sw.Section(secMeta, n.encodeMeta())
	sw.Section(secFingerprint, n.encodeFingerprint())
	sw.Section(secPaths, encodePaths(pt))
	sw.Section(secRoutes, routesPayload)
	sw.Section(secSpeakers, n.encodeSpeakers(ri))
	sw.Section(secQueue, encodeQueue(n.queue.Sorted(), ri))
	sw.Section(secChurn, churnPayload)
	sw.Section(secDirty, encodeDirty(n.dirtyQueue))
	return sw.Bytes(), nil
}

// RestoreNetwork decodes an RBGP snapshot from r and installs its
// state into base, which must be a freshly built network with the
// identical topology and policy (same builder, same seed): the
// snapshot's fingerprint is verified against base before any state is
// touched, and a decode error leaves base unmodified. Metrics wiring,
// CollectorFeedDown, and policy functions are kept from base.
func RestoreNetwork(r io.Reader, base *Network) error {
	sections, version, err := snap.ReadSectionsVersioned(r, snap.EngineMagic, snap.EngineVersion)
	if err != nil {
		return err
	}
	// v1 has no path table section and carries paths inline; v2 inserts
	// secPaths between the fingerprint and the route table.
	wantIDs := []byte{secMeta, secFingerprint, secRoutes, secSpeakers, secQueue, secChurn, secDirty}
	if version >= 2 {
		wantIDs = []byte{secMeta, secFingerprint, secPaths, secRoutes, secSpeakers, secQueue, secChurn, secDirty}
	}
	if len(sections) != len(wantIDs) {
		return fmt.Errorf("%w: got %d sections, want %d", snap.ErrCorrupt, len(sections), len(wantIDs))
	}
	for i, id := range wantIDs {
		if sections[i].ID != id {
			return fmt.Errorf("%w: section %d has id 0x%02x, want 0x%02x", snap.ErrCorrupt, i, sections[i].ID, id)
		}
	}
	meta, err := decodeMeta(sections[0].Payload)
	if err != nil {
		return err
	}
	if !bytes.Equal(sections[1].Payload, base.encodeFingerprint()) {
		return ErrSnapshotMismatch
	}
	var paths []asn.Path
	off := 0
	if version >= 2 {
		off = 1
		if paths, err = decodePaths(sections[2].Payload); err != nil {
			return err
		}
	}
	routes, err := decodeRoutes(sections[2+off].Payload, paths, version)
	if err != nil {
		return err
	}
	spks, err := decodeSpeakers(sections[3+off].Payload, base, routes)
	if err != nil {
		return err
	}
	queue, err := decodeQueue(sections[4+off].Payload, routes)
	if err != nil {
		return err
	}
	churn, err := decodeChurn(sections[5+off].Payload, paths, version)
	if err != nil {
		return err
	}
	dirty, err := decodeDirty(sections[6+off].Payload)
	if err != nil {
		return err
	}

	// Everything decoded and validated; apply atomically.
	base.clock = meta.clock
	base.eventsProcessed = meta.eventsProcessed
	base.DefaultDelay = meta.defaultDelay
	base.incremental = meta.incremental
	base.inc = meta.inc
	base.Churn = ChurnLog{Records: churn, TotalMessages: meta.churnTotal}
	base.queue.Restore(queue, meta.seq)
	base.batchDepth = 0
	base.dirtyQueue = dirty
	base.dirtySet = nil
	if len(dirty) > 0 {
		base.dirtySet = make(map[dirtyKey]bool, len(dirty))
		for _, k := range dirty {
			base.dirtySet[k] = true
		}
	}
	base.solverStale = true
	for _, st := range spks {
		st.apply()
	}
	return nil
}

// --- meta section ---

type metaState struct {
	clock           Time
	seq             uint64
	eventsProcessed int
	defaultDelay    Time
	incremental     bool
	churnTotal      int
	inc             IncStats
}

func (n *Network) encodeMeta() []byte {
	var e snap.Enc
	e.I64(int64(n.clock))
	e.U64(n.queue.Seq())
	e.U64(uint64(n.eventsProcessed))
	e.I64(int64(n.DefaultDelay))
	e.Bool(n.incremental)
	e.U64(uint64(n.Churn.TotalMessages))
	// IncStats, fixed-width so payload size is engine-mode independent.
	for _, v := range n.inc.fields() {
		e.I64(v)
	}
	return e.Bytes()
}

func decodeMeta(payload []byte) (metaState, error) {
	d := snap.NewDec(payload)
	var m metaState
	m.clock = Time(d.I64())
	m.seq = d.U64()
	m.eventsProcessed = int(d.U64())
	m.defaultDelay = Time(d.I64())
	m.incremental = d.Bool()
	m.churnTotal = int(d.U64())
	st := make([]int64, 9)
	for i := range st {
		st[i] = d.I64()
	}
	m.inc = IncStats{
		DecisionRuns: st[0], BestChanges: st[1], FullScans: st[2],
		FastPath: st[3], CacheHits: st[4], NoopDecisions: st[5],
		DirtyPairs: st[6], DirtyEvals: st[7], SuppressedProps: st[8],
	}
	return m, d.Done()
}

// fields returns the stats in their fixed serialization order.
func (s IncStats) fields() []int64 {
	return []int64{
		s.DecisionRuns, s.BestChanges, s.FullScans,
		s.FastPath, s.CacheHits, s.NoopDecisions,
		s.DirtyPairs, s.DirtyEvals, s.SuppressedProps,
	}
}

// --- fingerprint section ---

// encodeFingerprint digests static topology and policy: everything a
// restore must take from the base network rather than the snapshot.
// Dynamic per-peer settings (ExportPrepend, PrefixPrepend, session
// down) are deliberately excluded — they are state, carried in the
// speakers section.
func (n *Network) encodeFingerprint() []byte {
	var e snap.Enc
	e.Uvarint(uint64(len(n.order)))
	for _, id := range n.order {
		s := n.speakers[id]
		e.U32(uint32(s.ID))
		e.U32(uint32(s.AS))
		e.String(s.Name)
		e.Bool(s.Collector)
		e.Uvarint(uint64(len(s.peerOrder)))
		for _, nb := range s.peerOrder {
			pc := s.peers[nb]
			e.U32(uint32(pc.Neighbor))
			e.U32(uint32(pc.NeighborAS))
			e.U8(uint8(pc.ClassifyAs))
			e.U32(pc.ImportLocalPref)
			e.U8(uint8(pc.ExportAllow))
			e.U32(pc.ExportMED)
			e.I64(int64(pc.Delay))
			e.I64(int64(pc.MRAI))
			e.U32(pc.IGPCost)
			e.Bool(pc.RFD != nil)
			if pc.RFD != nil {
				e.F64(pc.RFD.PenaltyPerFlap)
				e.F64(pc.RFD.SuppressThreshold)
				e.F64(pc.RFD.ReuseThreshold)
				e.I64(int64(pc.RFD.HalfLife))
				e.I64(int64(pc.RFD.MaxSuppress))
			}
			encCommunities(&e, pc.ExportAddCommunities)
			// Presence bits for the non-serializable policy funcs: a base
			// built without (or with different) filters is a different
			// network even if all data matches.
			e.Bool(pc.ImportDeny != nil)
			e.Bool(pc.ExportFilter != nil)
			e.Bool(pc.ExportBestOf != nil)
		}
	}
	return e.Bytes()
}

// --- route table ---

// routeIndex assigns one index per distinct installed *Route, in
// canonical traversal order: per speaker (ascending ID) originated →
// adj-RIB-in → loc-RIB → adj-RIB-out → decision cache, then queued
// events in (at, seq) order. First sighting wins, so shared pointers
// share an index.
type routeIndex struct {
	idx  map[*Route]uint64
	list []*Route
}

func newRouteIndex(n *Network) *routeIndex {
	ri := &routeIndex{idx: make(map[*Route]uint64)}
	for _, id := range n.order {
		s := n.speakers[id]
		for _, p := range sortedOrigPrefixes(s.originated) {
			ri.add(s.originated[p].route)
		}
		addAll := func(st ribStore) {
			st.WalkSorted(func(_ ribKey, r *Route) bool {
				ri.add(r)
				return true
			})
		}
		addAll(s.adjIn)
		addAll(s.locRib)
		addAll(s.adjOut)
		for _, p := range sortedCachePrefixes(s.decCache) {
			e := s.decCache[p]
			for _, r := range e.cands {
				ri.add(r)
			}
			ri.add(e.best)
		}
	}
	for _, it := range n.queue.Sorted() {
		ri.add(it.V.route)
	}
	return ri
}

func (ri *routeIndex) add(r *Route) {
	if r == nil {
		return
	}
	if _, ok := ri.idx[r]; !ok {
		ri.idx[r] = uint64(len(ri.list))
		ri.list = append(ri.list, r)
	}
}

// ref encodes a nilable route reference as index+1 (0 = nil).
func (ri *routeIndex) ref(r *Route) uint64 {
	if r == nil {
		return 0
	}
	i, ok := ri.idx[r]
	if !ok {
		panic("bgp: snapshot route index missed a traversal path")
	}
	return i + 1
}

// must encodes a non-nil route reference as its bare index.
func (ri *routeIndex) must(r *Route) uint64 { return ri.ref(r) - 1 }

// encodePaths serializes the interned path table: a count, then per
// path (IDs 1..Len in order) a uvarint length and the AS words. The
// empty path is implicit as ID 0.
func encodePaths(pt *pathtab.Table) []byte {
	var e snap.Enc
	e.Uvarint(uint64(pt.Len()))
	for id := 1; id <= pt.Len(); id++ {
		p := pt.Resolve(pathtab.ID(id))
		e.Uvarint(uint64(len(p)))
		for _, a := range p {
			e.U32(uint32(a))
		}
	}
	return e.Bytes()
}

// decodePaths returns the table as a slice: paths[i] is ID i+1.
func decodePaths(payload []byte) ([]asn.Path, error) {
	d := snap.NewDec(payload)
	n := d.Count(1)
	paths := make([]asn.Path, 0, n)
	for i := 0; i < n; i++ {
		pl := d.Count(4)
		if d.Err() == nil && pl == 0 {
			return nil, fmt.Errorf("%w: empty path in path table (ID 0 is implicit)", snap.ErrCorrupt)
		}
		p := make(asn.Path, pl)
		for j := range p {
			p[j] = asn.AS(d.U32())
		}
		paths = append(paths, p)
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return paths, nil
}

// pathByID resolves a decoded path reference (0 = nil).
func pathByID(paths []asn.Path, id uint64, d *snap.Dec) (asn.Path, error) {
	if id == 0 || d.Err() != nil {
		return nil, d.Err()
	}
	if id > uint64(len(paths)) {
		return nil, fmt.Errorf("%w: path ID %d out of range (%d paths)", snap.ErrCorrupt, id, len(paths))
	}
	return paths[id-1], nil
}

func encodeRoutes(ri *routeIndex, pt *pathtab.Table) []byte {
	var e snap.Enc
	e.Uvarint(uint64(len(ri.list)))
	for _, r := range ri.list {
		encPrefix(&e, r.Prefix)
		e.Uvarint(uint64(pt.Intern(r.Path)))
		e.U8(uint8(r.Origin))
		e.U32(r.MED)
		e.U32(r.LocalPref)
		e.U8(uint8(r.Class))
		e.U32(uint32(r.From))
		e.U32(uint32(r.FromAS))
		e.Bool(r.EBGP)
		e.U32(r.IGPCost)
		e.I64(int64(r.LearnedAt))
		encCommunities(&e, r.Communities)
	}
	return e.Bytes()
}

// decodeRoutes reads the route table; in v1 each route carries its
// path inline, in v2 a reference into the decoded path table.
func decodeRoutes(payload []byte, paths []asn.Path, version uint16) ([]*Route, error) {
	d := snap.NewDec(payload)
	n := d.Count(20) // minimum encoded route size
	routes := make([]*Route, 0, n)
	for i := 0; i < n; i++ {
		r := &Route{}
		var err error
		if r.Prefix, err = decPrefix(d); err != nil {
			return nil, err
		}
		if version >= 2 {
			if r.Path, err = pathByID(paths, d.Uvarint(), d); err != nil {
				return nil, err
			}
		} else if pl := d.Count(4); pl > 0 {
			r.Path = make(asn.Path, pl)
			for j := range r.Path {
				r.Path[j] = asn.AS(d.U32())
			}
		}
		r.Origin = Origin(d.U8())
		r.MED = d.U32()
		r.LocalPref = d.U32()
		r.Class = RouteClass(d.U8())
		r.From = RouterID(d.U32())
		r.FromAS = asn.AS(d.U32())
		r.EBGP = d.Bool()
		r.IGPCost = d.U32()
		r.LearnedAt = Time(d.I64())
		r.Communities = decCommunities(d)
		routes = append(routes, r)
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return routes, nil
}

// routeAt resolves a bare index.
func routeAt(routes []*Route, idx uint64, d *snap.Dec) (*Route, error) {
	if d.Err() != nil {
		return nil, d.Err()
	}
	if idx >= uint64(len(routes)) {
		return nil, fmt.Errorf("%w: route index %d out of range (%d routes)", snap.ErrCorrupt, idx, len(routes))
	}
	return routes[idx], nil
}

// routeRef resolves an index+1 reference (0 = nil).
func routeRef(routes []*Route, ref uint64, d *snap.Dec) (*Route, error) {
	if ref == 0 {
		return nil, d.Err()
	}
	return routeAt(routes, ref-1, d)
}

// --- speakers section ---

// speakerState is one speaker's decoded dynamic state, held until the
// whole snapshot validates.
type speakerState struct {
	s           *Speaker
	originated  map[netutil.Prefix]origination
	adjIn       map[ribKey]*Route
	adjOut      map[ribKey]*Route
	locRib      map[netutil.Prefix]*Route
	rfd         map[ribKey]*rfdState
	suppressed  map[ribKey]bool
	mraiLast    map[ribKey]Time
	mraiPending map[ribKey]bool
	medSeen     map[netutil.Prefix]bool
	decCache    map[netutil.Prefix]decCacheEntry
	peerDyn     []peerDynState
}

type peerDynState struct {
	pc            *PeerConfig
	exportPrepend int
	down          bool
	prefixPrepend map[netutil.Prefix]int
}

func (st *speakerState) apply() {
	s := st.s
	s.originated = st.originated
	// The RIBs load through the store interface in sorted key order —
	// adj-RIB-in first, so an arena loc-RIB can share its records.
	s.adjIn.Reset()
	for _, k := range sortedKeysRoute(st.adjIn) {
		s.adjIn.Install(k, st.adjIn[k])
	}
	s.locRib.Reset()
	for _, p := range sortedRoutePrefixes(st.locRib) {
		s.locRib.Install(locKey(p), st.locRib[p])
	}
	s.adjOut.Reset()
	for _, k := range sortedKeysRoute(st.adjOut) {
		s.adjOut.Install(k, st.adjOut[k])
	}
	s.rfd = st.rfd
	s.suppressed = st.suppressed
	s.mraiLast = st.mraiLast
	s.mraiPending = st.mraiPending
	s.medSeen = st.medSeen
	s.decCache = st.decCache
	for _, pd := range st.peerDyn {
		pd.pc.ExportPrepend = pd.exportPrepend
		pd.pc.down = pd.down
		pd.pc.PrefixPrepend = pd.prefixPrepend
	}
}

func (n *Network) encodeSpeakers(ri *routeIndex) []byte {
	var e snap.Enc
	e.Uvarint(uint64(len(n.order)))
	for _, id := range n.order {
		s := n.speakers[id]
		e.U32(uint32(s.ID))

		orig := sortedOrigPrefixes(s.originated)
		e.Uvarint(uint64(len(orig)))
		for _, p := range orig {
			encPrefix(&e, p)
			e.Uvarint(ri.must(s.originated[p].route))
		}

		encRouteStore(&e, s.adjIn, ri)

		// The loc-RIB serializes under prefix-only keys (its neighbor
		// component is always 0).
		e.Uvarint(uint64(s.locRib.Len()))
		s.locRib.WalkSorted(func(k ribKey, r *Route) bool {
			encPrefix(&e, k.prefix)
			e.Uvarint(ri.must(r))
			return true
		})

		encRouteStore(&e, s.adjOut, ri)

		rfdKeys := make([]ribKey, 0, len(s.rfd))
		for k := range s.rfd {
			rfdKeys = append(rfdKeys, k)
		}
		sortRibKeysStable(rfdKeys)
		e.Uvarint(uint64(len(rfdKeys)))
		for _, k := range rfdKeys {
			st := s.rfd[k]
			encRibKey(&e, k)
			e.F64(st.penalty)
			e.I64(int64(st.lastUpdate))
			e.Bool(st.suppressed)
			e.I64(int64(st.suppressAt))
		}

		encKeySet(&e, s.suppressed)

		mraiKeys := make([]ribKey, 0, len(s.mraiLast))
		for k := range s.mraiLast {
			mraiKeys = append(mraiKeys, k)
		}
		sortRibKeysStable(mraiKeys)
		e.Uvarint(uint64(len(mraiKeys)))
		for _, k := range mraiKeys {
			encRibKey(&e, k)
			e.I64(int64(s.mraiLast[k]))
		}

		// Only true entries: the deliver path parks explicit false
		// values after an MRAI flush, but absent and false are
		// indistinguishable to every reader.
		encKeySet(&e, s.mraiPending)

		med := make([]netutil.Prefix, 0, len(s.medSeen))
		for p, v := range s.medSeen {
			if v {
				med = append(med, p)
			}
		}
		netutil.SortPrefixes(med)
		e.Uvarint(uint64(len(med)))
		for _, p := range med {
			encPrefix(&e, p)
		}

		cachePfx := sortedCachePrefixes(s.decCache)
		e.Uvarint(uint64(len(cachePfx)))
		for _, p := range cachePfx {
			ce := s.decCache[p]
			encPrefix(&e, p)
			e.Uvarint(uint64(len(ce.cands)))
			for _, r := range ce.cands {
				e.Uvarint(ri.must(r))
			}
			e.Uvarint(ri.ref(ce.best))
		}

		e.Uvarint(uint64(len(s.peerOrder)))
		for _, nb := range s.peerOrder {
			pc := s.peers[nb]
			e.U32(uint32(nb))
			e.I64(int64(pc.ExportPrepend))
			e.Bool(pc.down)
			pfx := make([]netutil.Prefix, 0, len(pc.PrefixPrepend))
			for p := range pc.PrefixPrepend {
				pfx = append(pfx, p)
			}
			netutil.SortPrefixes(pfx)
			e.Uvarint(uint64(len(pfx)))
			for _, p := range pfx {
				encPrefix(&e, p)
				e.I64(int64(pc.PrefixPrepend[p]))
			}
		}
	}
	return e.Bytes()
}

func decodeSpeakers(payload []byte, base *Network, routes []*Route) ([]*speakerState, error) {
	d := snap.NewDec(payload)
	count := d.Count(5)
	if d.Err() == nil && count != len(base.order) {
		return nil, fmt.Errorf("%w: snapshot has %d speakers, base has %d", snap.ErrCorrupt, count, len(base.order))
	}
	out := make([]*speakerState, 0, count)
	for i := 0; i < count; i++ {
		id := RouterID(d.U32())
		s := base.speakers[id]
		if d.Err() == nil && s == nil {
			return nil, fmt.Errorf("%w: snapshot speaker %d not in base network", snap.ErrCorrupt, id)
		}
		st := &speakerState{
			s:           s,
			originated:  make(map[netutil.Prefix]origination),
			adjIn:       make(map[ribKey]*Route),
			adjOut:      make(map[ribKey]*Route),
			locRib:      make(map[netutil.Prefix]*Route),
			rfd:         make(map[ribKey]*rfdState),
			suppressed:  make(map[ribKey]bool),
			mraiLast:    make(map[ribKey]Time),
			mraiPending: make(map[ribKey]bool),
			medSeen:     make(map[netutil.Prefix]bool),
		}

		for j, nOrig := 0, d.Count(6); j < nOrig; j++ {
			p, err := decPrefix(d)
			if err != nil {
				return nil, err
			}
			r, err := routeAt(routes, d.Uvarint(), d)
			if err != nil {
				return nil, err
			}
			st.originated[p] = origination{route: r}
		}

		if err := decRouteMap(d, st.adjIn, routes); err != nil {
			return nil, err
		}

		for j, nLoc := 0, d.Count(6); j < nLoc; j++ {
			p, err := decPrefix(d)
			if err != nil {
				return nil, err
			}
			r, err := routeAt(routes, d.Uvarint(), d)
			if err != nil {
				return nil, err
			}
			st.locRib[p] = r
		}

		if err := decRouteMap(d, st.adjOut, routes); err != nil {
			return nil, err
		}

		for j, nRfd := 0, d.Count(9+25); j < nRfd; j++ {
			k, err := decRibKey(d)
			if err != nil {
				return nil, err
			}
			st.rfd[k] = &rfdState{
				penalty:    d.F64(),
				lastUpdate: Time(d.I64()),
				suppressed: d.Bool(),
				suppressAt: Time(d.I64()),
			}
		}

		if err := decKeySet(d, st.suppressed); err != nil {
			return nil, err
		}

		for j, nMrai := 0, d.Count(9+8); j < nMrai; j++ {
			k, err := decRibKey(d)
			if err != nil {
				return nil, err
			}
			st.mraiLast[k] = Time(d.I64())
		}

		if err := decKeySet(d, st.mraiPending); err != nil {
			return nil, err
		}

		for j, nMed := 0, d.Count(5); j < nMed; j++ {
			p, err := decPrefix(d)
			if err != nil {
				return nil, err
			}
			st.medSeen[p] = true
		}

		nCache := d.Count(7)
		if nCache > 0 {
			st.decCache = make(map[netutil.Prefix]decCacheEntry, nCache)
		}
		for j := 0; j < nCache; j++ {
			p, err := decPrefix(d)
			if err != nil {
				return nil, err
			}
			nc := d.Count(1)
			cands := make([]*Route, 0, nc)
			for c := 0; c < nc; c++ {
				r, err := routeAt(routes, d.Uvarint(), d)
				if err != nil {
					return nil, err
				}
				cands = append(cands, r)
			}
			best, err := routeRef(routes, d.Uvarint(), d)
			if err != nil {
				return nil, err
			}
			st.decCache[p] = decCacheEntry{cands: cands, best: best}
		}

		for j, nPeers := 0, d.Count(14); j < nPeers; j++ {
			nb := RouterID(d.U32())
			var pc *PeerConfig
			if s != nil {
				pc = s.peers[nb]
			}
			if d.Err() == nil && pc == nil {
				return nil, fmt.Errorf("%w: snapshot peer %d of speaker %d not in base network", snap.ErrCorrupt, nb, id)
			}
			pd := peerDynState{
				pc:            pc,
				exportPrepend: int(d.I64()),
				down:          d.Bool(),
			}
			nPfx := d.Count(13)
			if nPfx > 0 {
				pd.prefixPrepend = make(map[netutil.Prefix]int, nPfx)
			}
			for c := 0; c < nPfx; c++ {
				p, err := decPrefix(d)
				if err != nil {
					return nil, err
				}
				pd.prefixPrepend[p] = int(d.I64())
			}
			st.peerDyn = append(st.peerDyn, pd)
		}

		out = append(out, st)
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return out, nil
}

// --- queue section ---

// encodeQueue serializes the pending events in (At, Seq) order — the
// vtime.Queue.Sorted traversal — with each item's due time and
// sequence number written explicitly, so the wire format is identical
// to the pre-vtime eventHeap encoding byte for byte.
func encodeQueue(items []vtime.Item[*event], ri *routeIndex) []byte {
	var e snap.Enc
	e.Uvarint(uint64(len(items)))
	for _, it := range items {
		ev := it.V
		e.I64(int64(it.At))
		e.U64(it.Seq)
		e.U32(uint32(ev.to))
		e.U32(uint32(ev.from))
		encPrefix(&e, ev.prefix)
		e.Uvarint(ri.ref(ev.route))
		e.Bool(ev.rfd)
		e.Bool(ev.mrai)
	}
	return e.Bytes()
}

func decodeQueue(payload []byte, routes []*Route) ([]vtime.Item[*event], error) {
	d := snap.NewDec(payload)
	n := d.Count(32)
	q := make([]vtime.Item[*event], 0, n)
	for i := 0; i < n; i++ {
		it := vtime.Item[*event]{
			At:  vtime.Time(d.I64()),
			Seq: d.U64(),
			V:   &event{},
		}
		ev := it.V
		ev.to = RouterID(d.U32())
		ev.from = RouterID(d.U32())
		var err error
		if ev.prefix, err = decPrefix(d); err != nil {
			return nil, err
		}
		if ev.route, err = routeRef(routes, d.Uvarint(), d); err != nil {
			return nil, err
		}
		ev.rfd = d.Bool()
		ev.mrai = d.Bool()
		q = append(q, it)
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return q, nil
}

// --- churn section ---

func encodeChurn(recs []UpdateRecord, pt *pathtab.Table) []byte {
	var e snap.Enc
	e.Uvarint(uint64(len(recs)))
	for _, rec := range recs {
		e.I64(int64(rec.At))
		e.U32(uint32(rec.Collector))
		e.U32(uint32(rec.PeerAS))
		encPrefix(&e, rec.Prefix)
		e.Bool(rec.Announce)
		e.Uvarint(uint64(pt.Intern(rec.Path)))
	}
	return e.Bytes()
}

// decodeChurn reads the churn log; paths are inline in v1, path-table
// references in v2.
func decodeChurn(payload []byte, paths []asn.Path, version uint16) ([]UpdateRecord, error) {
	d := snap.NewDec(payload)
	minRec := 24
	if version >= 2 {
		minRec = 23 // the inline path became a one-byte-minimum table reference
	}
	n := d.Count(minRec)
	var recs []UpdateRecord
	if n > 0 {
		recs = make([]UpdateRecord, 0, n)
	}
	for i := 0; i < n; i++ {
		rec := UpdateRecord{
			At:        Time(d.I64()),
			Collector: RouterID(d.U32()),
			PeerAS:    asn.AS(d.U32()),
		}
		var err error
		if rec.Prefix, err = decPrefix(d); err != nil {
			return nil, err
		}
		rec.Announce = d.Bool()
		if version >= 2 {
			if rec.Path, err = pathByID(paths, d.Uvarint(), d); err != nil {
				return nil, err
			}
		} else if pl := d.Count(4); pl > 0 {
			rec.Path = make(asn.Path, pl)
			for j := range rec.Path {
				rec.Path[j] = asn.AS(d.U32())
			}
		}
		recs = append(recs, rec)
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return recs, nil
}

// --- dirty section ---

func encodeDirty(queue []dirtyKey) []byte {
	var e snap.Enc
	e.Uvarint(uint64(len(queue)))
	for _, k := range queue {
		e.U32(uint32(k.router))
		encPrefix(&e, k.prefix)
		e.U32(uint32(k.neighbor))
	}
	return e.Bytes()
}

func decodeDirty(payload []byte) ([]dirtyKey, error) {
	d := snap.NewDec(payload)
	n := d.Count(13)
	var out []dirtyKey
	for i := 0; i < n; i++ {
		k := dirtyKey{router: RouterID(d.U32())}
		var err error
		if k.prefix, err = decPrefix(d); err != nil {
			return nil, err
		}
		k.neighbor = RouterID(d.U32())
		out = append(out, k)
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return out, nil
}

// --- shared primitives ---

func encPrefix(e *snap.Enc, p netutil.Prefix) {
	e.U32(p.Addr())
	e.U8(uint8(p.Bits()))
}

func decPrefix(d *snap.Dec) (netutil.Prefix, error) {
	addr := d.U32()
	bits := int(d.U8())
	if err := d.Err(); err != nil {
		return netutil.Prefix{}, err
	}
	if bits > 32 {
		return netutil.Prefix{}, fmt.Errorf("%w: prefix length %d", snap.ErrCorrupt, bits)
	}
	return netutil.PrefixFrom(addr, bits), nil
}

func encRibKey(e *snap.Enc, k ribKey) {
	encPrefix(e, k.prefix)
	e.U32(uint32(k.neighbor))
}

func decRibKey(d *snap.Dec) (ribKey, error) {
	p, err := decPrefix(d)
	if err != nil {
		return ribKey{}, err
	}
	return ribKey{prefix: p, neighbor: RouterID(d.U32())}, nil
}

func encCommunities(e *snap.Enc, cs CommunitySet) {
	vals := cs.Values()
	e.Uvarint(uint64(len(vals)))
	for _, c := range vals {
		e.U32(uint32(c))
	}
}

func decCommunities(d *snap.Dec) CommunitySet {
	n := d.Count(4)
	if n == 0 {
		return CommunitySet{}
	}
	vals := make([]Community, n)
	for i := range vals {
		vals[i] = Community(d.U32())
	}
	return NewCommunitySet(vals...)
}

// encRouteStore emits a ribStore's entries under sorted keys.
func encRouteStore(e *snap.Enc, st ribStore, ri *routeIndex) {
	e.Uvarint(uint64(st.Len()))
	st.WalkSorted(func(k ribKey, r *Route) bool {
		encRibKey(e, k)
		e.Uvarint(ri.must(r))
		return true
	})
}

func decRouteMap(d *snap.Dec, m map[ribKey]*Route, routes []*Route) error {
	for j, n := 0, d.Count(10); j < n; j++ {
		k, err := decRibKey(d)
		if err != nil {
			return err
		}
		r, err := routeAt(routes, d.Uvarint(), d)
		if err != nil {
			return err
		}
		m[k] = r
	}
	return d.Err()
}

// encKeySet emits the true keys of a map[ribKey]bool, sorted.
func encKeySet(e *snap.Enc, m map[ribKey]bool) {
	keys := make([]ribKey, 0, len(m))
	for k, v := range m {
		if v {
			keys = append(keys, k)
		}
	}
	sortRibKeysStable(keys)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		encRibKey(e, k)
	}
}

func decKeySet(d *snap.Dec, m map[ribKey]bool) error {
	for j, n := 0, d.Count(9); j < n; j++ {
		k, err := decRibKey(d)
		if err != nil {
			return err
		}
		m[k] = true
	}
	return d.Err()
}

// sortRibKeysStable orders by (prefix, neighbor); the serialization
// twin of the test helper sortRibKeys.
func sortRibKeysStable(keys []ribKey) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.prefix != b.prefix {
			return netutil.ComparePrefixes(a.prefix, b.prefix) < 0
		}
		return a.neighbor < b.neighbor
	})
}

func sortedOrigPrefixes(m map[netutil.Prefix]origination) []netutil.Prefix {
	out := make([]netutil.Prefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	netutil.SortPrefixes(out)
	return out
}

func sortedRoutePrefixes(m map[netutil.Prefix]*Route) []netutil.Prefix {
	out := make([]netutil.Prefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	netutil.SortPrefixes(out)
	return out
}

func sortedKeysRoute(m map[ribKey]*Route) []ribKey {
	out := make([]ribKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortRibKeysStable(out)
	return out
}

func sortedCachePrefixes(m map[netutil.Prefix]decCacheEntry) []netutil.Prefix {
	out := make([]netutil.Prefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	netutil.SortPrefixes(out)
	return out
}
