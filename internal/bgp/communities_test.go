package bgp

import (
	"testing"
	"testing/quick"

	"repro/internal/asn"
	"repro/internal/netutil"
)

func TestCommunityString(t *testing.T) {
	if got := MakeCommunity(11537, 100).String(); got != "11537:100" {
		t.Errorf("String = %q", got)
	}
	if NoExport.String() != "no-export" || NoAdvertise.String() != "no-advertise" {
		t.Error("well-known names wrong")
	}
}

func TestCommunitySetOps(t *testing.T) {
	s := NewCommunitySet(MakeCommunity(1, 2), MakeCommunity(1, 2), NoExport)
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2 (dedup)", s.Len())
	}
	if !s.Has(NoExport) || !s.Has(MakeCommunity(1, 2)) || s.Has(NoAdvertise) {
		t.Error("membership wrong")
	}
	s2 := s.With(NoAdvertise)
	if !s2.Has(NoAdvertise) || s.Has(NoAdvertise) {
		t.Error("With must not mutate the receiver")
	}
	s3 := s2.Without(NoExport)
	if s3.Has(NoExport) || !s2.Has(NoExport) {
		t.Error("Without must not mutate the receiver")
	}
	if s3.Without(NoExport).Len() != s3.Len() {
		t.Error("Without of an absent member should not shrink the set")
	}
	var empty CommunitySet
	if empty.Len() != 0 || empty.Has(NoExport) || empty.String() != "{}" {
		t.Error("zero value should be the empty set")
	}
	if got := NewCommunitySet(MakeCommunity(2, 1), MakeCommunity(1, 1)).String(); got != "{1:1 2:1}" {
		t.Errorf("String = %q", got)
	}
}

func TestCommunitySetSortedInvariant(t *testing.T) {
	f := func(raw []uint32) bool {
		cs := make([]Community, len(raw))
		for i, v := range raw {
			cs[i] = Community(v)
		}
		s := NewCommunitySet(cs...)
		vals := s.Values()
		for i := 1; i < len(vals); i++ {
			if vals[i] <= vals[i-1] {
				return false
			}
		}
		for _, c := range cs {
			if !s.Has(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// chainNet builds origin(1) -> middle(2) -> edge(3), all customer
// relationships upward.
func chainNet() *Network {
	net := NewNetwork()
	net.AddSpeaker(1, 100, "origin")
	net.AddSpeaker(2, 200, "middle")
	net.AddSpeaker(3, 300, "edge")
	cust := bgp2custCfg()
	prov := bgp2provCfg()
	net.Connect(2, 1, cust, prov) // 1 is 2's customer
	net.Connect(3, 2, cust, prov) // 2 is 3's customer
	return net
}

func bgp2custCfg() PeerConfig {
	return PeerConfig{ClassifyAs: ClassCustomer, ImportLocalPref: LocalPrefCustomer, ExportAllow: GaoRexfordExport(ClassCustomer)}
}

func bgp2provCfg() PeerConfig {
	return PeerConfig{ClassifyAs: ClassProvider, ImportLocalPref: LocalPrefProvider, ExportAllow: GaoRexfordExport(ClassProvider)}
}

func TestCommunitiesPropagate(t *testing.T) {
	net := chainNet()
	p := netutil.MustParsePrefix("203.0.113.0/24")
	tag := MakeCommunity(100, 42)
	net.OriginateWith(1, p, OriginateOpts{Communities: NewCommunitySet(tag)})
	net.RunToQuiescence()
	r := net.Speaker(3).Best(p)
	if r == nil || !r.Communities.Has(tag) {
		t.Fatalf("community did not propagate: %v", r)
	}
}

func TestNoExportStopsAtFirstAS(t *testing.T) {
	net := chainNet()
	p := netutil.MustParsePrefix("203.0.113.0/24")
	net.OriginateWith(1, p, OriginateOpts{Communities: NewCommunitySet(NoExport)})
	net.RunToQuiescence()
	if net.Speaker(2).Best(p) == nil {
		t.Fatal("direct neighbor should learn a NoExport route")
	}
	if r := net.Speaker(3).Best(p); r != nil {
		t.Errorf("NoExport route re-exported beyond the first AS: %v", r)
	}
}

func TestExportAddCommunities(t *testing.T) {
	net := chainNet()
	p := netutil.MustParsePrefix("203.0.113.0/24")
	tag := MakeCommunity(200, 7)
	// middle tags announcements toward edge.
	net.Speaker(2).Peer(3).ExportAddCommunities = NewCommunitySet(tag)
	net.Originate(1, p)
	net.RunToQuiescence()
	r := net.Speaker(3).Best(p)
	if r == nil || !r.Communities.Has(tag) {
		t.Fatalf("edge missing session-added community: %v", r)
	}
	// origin's own copy is untouched.
	if net.Speaker(2).Best(p).Communities.Len() != 0 {
		t.Error("middle's route should carry no communities")
	}
}

func TestPoisonedOrigination(t *testing.T) {
	// origin(1) announces poisoned against AS 300 (edge): middle keeps
	// the route, edge discards it by loop detection.
	net := chainNet()
	p := netutil.MustParsePrefix("203.0.113.0/24")
	net.OriginateWith(1, p, OriginateOpts{Poison: []asn.AS{300}})
	net.RunToQuiescence()
	mid := net.Speaker(2).Best(p)
	if mid == nil {
		t.Fatal("middle lost the poisoned route")
	}
	want := asn.MustParsePath("100 300 100")
	if !mid.Path.Equal(want) {
		t.Errorf("poisoned path = %v, want %v", mid.Path, want)
	}
	if mid.Path.Origin() != 100 {
		t.Error("poisoning must preserve the origin")
	}
	if r := net.Speaker(3).Best(p); r != nil {
		t.Errorf("poisoned AS still learned the route: %v", r)
	}
	// Re-announcing unpoisoned restores reachability.
	net.Originate(1, p)
	net.RunToQuiescence()
	if net.Speaker(3).Best(p) == nil {
		t.Error("edge should recover after the poison is lifted")
	}
}

func TestMRAIBatchesUpdates(t *testing.T) {
	// Rapid prepend changes at the origin within one MRAI must reach
	// the edge as a single final update.
	net := chainNet()
	net.Speaker(2).Peer(3).MRAI = 30
	p := netutil.MustParsePrefix("203.0.113.0/24")
	net.Originate(1, p)
	net.RunToQuiescence()
	before := net.Churn.TotalMessages

	// Three flaps in quick succession (2s apart).
	for i := 1; i <= 3; i++ {
		net.SetPrefixPrepend(1, 2, p, i)
		net.Run(net.Now() + 2)
	}
	net.RunToQuiescence()
	delta := net.Churn.TotalMessages - before
	// Without MRAI: 3 updates to middle + 3 to edge = 6. With MRAI on
	// the middle->edge session, the edge sees fewer than 3.
	if delta >= 6 {
		t.Errorf("MRAI did not batch: %d messages", delta)
	}
	// Final state must still be correct.
	r := net.Speaker(3).Best(p)
	if r == nil || r.Path.PrependCount() != 3 {
		t.Errorf("edge final route wrong: %v", r)
	}
}

func TestMRAIFinalStateMatchesNoMRAI(t *testing.T) {
	// Property: MRAI changes timing, never the converged outcome.
	build := func(mrai Time) *Network {
		net := chainNet()
		net.Speaker(2).Peer(3).MRAI = mrai
		p := netutil.MustParsePrefix("203.0.113.0/24")
		net.Originate(1, p)
		net.RunToQuiescence()
		for i := 1; i <= 4; i++ {
			net.SetPrefixPrepend(1, 2, p, i%3)
			net.Run(net.Now() + 1)
		}
		net.RunToQuiescence()
		return net
	}
	p := netutil.MustParsePrefix("203.0.113.0/24")
	with := build(45).Speaker(3).Best(p)
	without := build(0).Speaker(3).Best(p)
	if with == nil || without == nil || !with.Path.Equal(without.Path) {
		t.Errorf("MRAI changed convergence: %v vs %v", with, without)
	}
}
