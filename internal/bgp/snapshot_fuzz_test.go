package bgp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	snap "repro/internal/snapshot"
)

// fuzzSeedInputs builds the seed corpus of FuzzSnapshotDecode: a valid
// snapshot, that snapshot truncated at every section boundary, one
// with a flipped CRC byte, and one claiming a future format version.
func fuzzSeedInputs(t testing.TB) [][]byte {
	t.Helper()
	var buf bytes.Buffer
	if err := goldenNet().Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	inputs := [][]byte{valid}
	secs, err := snap.DecodeSections(valid, snap.EngineMagic, snap.EngineVersion)
	if err != nil {
		t.Fatal(err)
	}
	off := len(snap.EngineMagic) + 2
	inputs = append(inputs, valid[:off])
	for _, s := range secs {
		off += 1 + uvarintLen(uint64(len(s.Payload))) + len(s.Payload) + 4
		inputs = append(inputs, valid[:off])
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0xFF
	inputs = append(inputs, flipped)
	future := append([]byte(nil), valid...)
	binary.BigEndian.PutUint16(future[4:], snap.EngineVersion+1)
	inputs = append(inputs, future)
	// The frozen v1 golden file keeps the legacy decode path in the
	// corpus now that fresh snapshots are written in v2.
	if legacy, err := os.ReadFile(filepath.Join("testdata", "golden_v1.rbgp")); err == nil {
		inputs = append(inputs, legacy)
	}
	return inputs
}

func uvarintLen(v uint64) int {
	var tmp [binary.MaxVarintLen64]byte
	return binary.PutUvarint(tmp[:], v)
}

// FuzzSnapshotDecode feeds arbitrary bytes to RestoreNetwork: the
// decoder must return an error or restore a consistent network — never
// panic, and never allocate past the input's own size class.
func FuzzSnapshotDecode(f *testing.F) {
	for _, in := range fuzzSeedInputs(f) {
		f.Add(in)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		base := mraiRfdNet()
		if err := RestoreNetwork(bytes.NewReader(data), base); err != nil {
			return
		}
		// A successful restore must leave a network the engine can
		// drain and re-snapshot without issue.
		base.RunToQuiescence()
		var buf bytes.Buffer
		if err := base.Snapshot(&buf); err != nil {
			t.Fatalf("restored network failed to re-snapshot: %v", err)
		}
	})
}

// TestWriteFuzzCorpus materializes the seed inputs as a committed
// corpus under testdata/fuzz/FuzzSnapshotDecode (regenerate with
// -update), so the corner cases run on every plain `go test`, not just
// under -fuzz.
func TestWriteFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzSnapshotDecode")
	inputs := fuzzSeedInputs(t)
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, in := range inputs {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(in)) + ")\n"
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) < len(inputs) {
		t.Fatalf("committed corpus incomplete (%d entries, want >= %d): regenerate with -update (%v)", len(entries), len(inputs), err)
	}
}
