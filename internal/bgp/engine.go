package bgp

import (
	"fmt"
	"sort"

	"repro/internal/asn"
	"repro/internal/netutil"
	"repro/internal/telemetry"
	"repro/internal/vtime"
)

// event is a BGP update in flight: an announcement (route != nil) or a
// withdrawal, due at a speaker, plus internal timer events (RFD reuse
// checks, MRAI flushes). Its due time and FIFO tie-break live in the
// vtime.Queue item wrapping it, so the queue's (At, Seq) ordering is
// the single definition of delivery order.
type event struct {
	to     RouterID
	from   RouterID
	prefix netutil.Prefix
	route  *Route // nil = withdraw
	rfd    bool   // RFD reuse-check timer rather than an update
	mrai   bool   // MRAI flush timer, delivered to the *sender*
}

// UpdateRecord is one BGP message as observed at a collector, the raw
// material of Figure 3 and Tables 3-4.
type UpdateRecord struct {
	At        Time
	Collector RouterID
	PeerAS    asn.AS // the collector's peer that relayed the update
	Prefix    netutil.Prefix
	Announce  bool
	Path      asn.Path
}

// ChurnLog accumulates collector-observed updates plus network-wide
// message totals.
type ChurnLog struct {
	// Records holds every update received by a Collector speaker, in
	// delivery order.
	Records []UpdateRecord
	// TotalMessages counts all update messages delivered anywhere.
	TotalMessages int
}

// Network is the simulated internetwork: speakers, sessions, a virtual
// clock, and the in-flight update queue.
type Network struct {
	speakers map[RouterID]*Speaker
	order    []RouterID
	byName   map[string]RouterID

	clock Time
	queue vtime.Queue[*event]

	// DefaultDelay is the per-hop propagation delay applied when a
	// session has none configured.
	DefaultDelay Time

	// Churn is the update log; reset it between experiment phases to
	// window the counts.
	Churn ChurnLog

	// CollectorFeedDown, when set, reports whether the archive feed of
	// the given collector is down at a virtual time. Updates delivered
	// to that collector during a gap are processed normally (the BGP
	// session itself stays up) but are not recorded in Churn — the
	// collector-outage failure mode of public archives, where update
	// files go missing while routing continues.
	CollectorFeedDown func(collector RouterID, at Time) bool

	eventsProcessed int

	// metrics holds the pre-resolved instrumentation counters; the
	// zero value (nil counters) is the free disabled path. Speakers
	// share it by pointer, so SetMetrics enables the whole network at
	// once.
	metrics netMetrics

	// solver caches the static solver's RouterID-indexed adjacency;
	// AddSpeaker/Connect invalidate it.
	solver      *solverIndex
	solverStale bool

	// Incremental recomputation state (see incremental.go): the mode
	// switch, the dirty-pair work queue fed by config setters and
	// session flaps, and the decision-work counters.
	incremental bool
	batchDepth  int
	dirtyQueue  []dirtyKey
	dirtySet    map[dirtyKey]bool
	inc         IncStats

	// Compact-RIB state (see arena.go): when compact is set (before
	// any speaker exists), AddSpeaker gives each speaker arena-backed
	// stores over the shared path table and prefix index in ribBE.
	compact bool
	ribBE   *ribBackend
}

// netMetrics caches the dynamic engine's hot-path counters so the
// per-event cost is one nil check when telemetry is disabled and one
// atomic add when enabled.
type netMetrics struct {
	decisionRuns     *telemetry.Counter
	bestChanges      *telemetry.Counter
	updatesDelivered *telemetry.Counter
	rfdPenalties     *telemetry.Counter
	rfdSuppressions  *telemetry.Counter

	// Incremental work accounting. These (and only these) may differ
	// between full and incremental mode; everything above is 1:1.
	fullScans     *telemetry.Counter
	incFastPath   *telemetry.Counter
	incCacheHits  *telemetry.Counter
	incNoop       *telemetry.Counter
	incDirtyPairs *telemetry.Counter
	incDirtyEvals *telemetry.Counter
	incSuppressed *telemetry.Counter
}

// SetMetrics wires the network (and every speaker, present and
// future) to the registry. A nil registry disables instrumentation.
func (n *Network) SetMetrics(r *telemetry.Registry) {
	n.metrics = netMetrics{
		decisionRuns:     r.Counter("bgp_decision_runs_total"),
		bestChanges:      r.Counter("bgp_best_path_changes_total"),
		updatesDelivered: r.Counter("bgp_updates_delivered_total"),
		rfdPenalties:     r.Counter("bgp_rfd_penalties_total"),
		rfdSuppressions:  r.Counter("bgp_rfd_suppressions_total"),

		fullScans:     r.Counter("bgp_decision_full_scans_total"),
		incFastPath:   r.Counter("bgp_inc_fastpath_total"),
		incCacheHits:  r.Counter("bgp_inc_cache_hits_total"),
		incNoop:       r.Counter("bgp_inc_noop_decisions_total"),
		incDirtyPairs: r.Counter("bgp_inc_dirty_pairs_total"),
		incDirtyEvals: r.Counter("bgp_inc_dirty_evals_total"),
		incSuppressed: r.Counter("bgp_inc_suppressed_propagations_total"),
	}
}

// NewNetwork returns an empty network with a 1-second default hop
// delay.
func NewNetwork() *Network {
	return &Network{
		speakers:     make(map[RouterID]*Speaker),
		byName:       make(map[string]RouterID),
		DefaultDelay: 1,
	}
}

// Now returns the virtual clock.
func (n *Network) Now() Time { return n.clock }

// AdvanceTo moves the clock forward (processing nothing; call Run to
// drain events first). Used between experiment phases.
func (n *Network) AdvanceTo(t Time) {
	if t > n.clock {
		n.clock = t
	}
}

// EventsProcessed returns the number of delivered events so far.
func (n *Network) EventsProcessed() int { return n.eventsProcessed }

// PendingEvents returns the number of queued (undelivered) events.
func (n *Network) PendingEvents() int { return n.queue.Len() }

// NextEventTime returns the due time of the earliest queued event; ok
// is false when the queue is empty.
func (n *Network) NextEventTime() (Time, bool) {
	it, ok := n.queue.Peek()
	return Time(it.At), ok
}

// AddSpeaker creates a speaker. IDs and names must be unique.
func (n *Network) AddSpeaker(id RouterID, as asn.AS, name string) *Speaker {
	if _, dup := n.speakers[id]; dup {
		panic(fmt.Sprintf("bgp: duplicate speaker id %d", id))
	}
	if _, dup := n.byName[name]; dup && name != "" {
		panic(fmt.Sprintf("bgp: duplicate speaker name %q", name))
	}
	s := newSpeaker(id, as, name)
	if n.compact {
		if id == 0 {
			panic("bgp: RouterID 0 is reserved (loc-RIB store key)")
		}
		ar := newSpeakerArena(n.ribBE)
		in := newArenaStore(ar)
		loc := newArenaStore(ar)
		loc.sibling = in // loc-RIB delta-encodes against adj-RIB-in
		s.adjIn, s.locRib, s.adjOut = in, loc, newArenaStore(ar)
	}
	s.metrics = &n.metrics
	n.speakers[id] = s
	n.solverStale = true
	// Generators add speakers in ascending ID order, so the common case
	// is a plain append; re-sorting on every insertion would make an
	// 80K-speaker build quadratic.
	if k := len(n.order); k == 0 || n.order[k-1] < id {
		n.order = append(n.order, id)
	} else {
		n.order = append(n.order, id)
		sort.Slice(n.order, func(i, j int) bool { return n.order[i] < n.order[j] })
	}
	if name != "" {
		n.byName[name] = id
	}
	return s
}

// Speaker returns the speaker with the given ID, or nil.
func (n *Network) Speaker(id RouterID) *Speaker { return n.speakers[id] }

// SpeakerByName returns the speaker with the given name, or nil.
func (n *Network) SpeakerByName(name string) *Speaker {
	id, ok := n.byName[name]
	if !ok {
		return nil
	}
	return n.speakers[id]
}

// Speakers returns all router IDs in ascending order.
func (n *Network) Speakers() []RouterID {
	out := make([]RouterID, len(n.order))
	copy(out, n.order)
	return out
}

// Connect establishes a session between a and b. cfgAtA is a's policy
// toward b and vice versa; Connect fills in the Neighbor/NeighborAS
// fields from the speakers themselves.
func (n *Network) Connect(a, b RouterID, cfgAtA, cfgAtB PeerConfig) {
	sa, sb := n.speakers[a], n.speakers[b]
	if sa == nil || sb == nil {
		panic(fmt.Sprintf("bgp: Connect(%d,%d): unknown speaker", a, b))
	}
	cfgAtA.Neighbor, cfgAtA.NeighborAS = b, sb.AS
	cfgAtB.Neighbor, cfgAtB.NeighborAS = a, sa.AS
	pa, pb := cfgAtA, cfgAtB
	sa.addPeer(&pa)
	sb.addPeer(&pb)
	n.solverStale = true
	// Initial table exchange: a freshly established session carries
	// each side's existing exportable state (RFC 4271 §9.2: the whole
	// Adj-RIB-Out is advertised when the session comes up).
	for _, p := range sa.exportablePrefixes() {
		n.exportToPeer(sa, p, &pa)
	}
	for _, p := range sb.exportablePrefixes() {
		n.exportToPeer(sb, p, &pb)
	}
}

// OriginateOpts parametrize an origination.
type OriginateOpts struct {
	// Communities are attached to the origination and travel with it.
	Communities CommunitySet
	// Poison inserts the given ASes into the announced path (after the
	// origin's own leading AS, before its trailing copy), the active
	// AS-path-poisoning technique of Colitti et al. (§2.2): any AS in
	// the list discards the route through loop detection, keeping the
	// announcement out of that AS's part of the Internet.
	Poison []asn.AS
}

// Originate injects a locally originated route at the speaker and
// propagates it. Announcing an already-originated prefix replaces the
// origination (a re-announcement).
func (n *Network) Originate(id RouterID, p netutil.Prefix) {
	n.OriginateWith(id, p, OriginateOpts{})
}

// OriginateWith is Originate with communities and/or poisoning.
func (n *Network) OriginateWith(id RouterID, p netutil.Prefix, opts OriginateOpts) {
	s := n.speakers[id]
	if s == nil {
		panic(fmt.Sprintf("bgp: Originate: unknown speaker %d", id))
	}
	// A poisoned origination pre-seeds the path with "<poison...> <own>"
	// so exports read "<own> <poison...> <own>": the origin stays the
	// origin, and poisoned ASes drop the route.
	var path asn.Path
	if len(opts.Poison) > 0 {
		path = make(asn.Path, 0, len(opts.Poison)+1)
		path = append(path, opts.Poison...)
		path = append(path, s.AS)
	}
	var before *Route
	if o, ok := s.originated[p]; ok {
		before = o.route
	}
	after := &Route{
		Prefix:      p,
		Path:        path,
		Origin:      OriginIGP,
		LocalPref:   LocalPrefOwn,
		Class:       ClassOwn,
		From:        0,
		FromAS:      asn.None,
		EBGP:        false,
		LearnedAt:   n.clock,
		Communities: opts.Communities,
	}
	s.originated[p] = origination{route: after}
	if after.MED != 0 {
		s.medSeen[p] = true
	}
	if n.incremental {
		n.decide(s, p, 0, before, after)
	} else {
		n.decideAndExport(s, p)
	}
}

// WithdrawOrigination removes a local origination and propagates the
// withdrawal.
func (n *Network) WithdrawOrigination(id RouterID, p netutil.Prefix) {
	s := n.speakers[id]
	if s == nil {
		return
	}
	o, ok := s.originated[p]
	if !ok {
		return
	}
	delete(s.originated, p)
	if n.incremental {
		n.decide(s, p, 0, o.route, nil)
	} else {
		n.decideAndExport(s, p)
	}
}

// SetExportPrepend changes the operator prepending s applies toward
// neighbor nb and re-exports affected prefixes. This is the knob the
// experiments turn between probing rounds (§3.3).
func (n *Network) SetExportPrepend(id, nb RouterID, prepends int) {
	s := n.speakers[id]
	if s == nil {
		return
	}
	pc := s.peers[nb]
	if pc == nil || pc.ExportPrepend == prepends {
		return
	}
	pc.ExportPrepend = prepends
	// Re-export every prefix this speaker currently advertises (or
	// should advertise) to nb. Prefixes pinned by a per-prefix
	// override are untouched by the session-level knob — the same
	// effective-value no-op rule SetPrefixPrepend applies.
	for _, p := range s.exportablePrefixes() {
		if _, pinned := pc.PrefixPrepend[p]; pinned {
			continue
		}
		n.requestExport(s, p, pc)
	}
}

// SetSessionDown tears down the session between a and b: both sides
// drop all routes learned over it and propagate the consequences, and
// no updates flow until SetSessionUp. Used to inject the outages that
// produce the paper's "Switch to commodity" and "Oscillating"
// categories (§4).
func (n *Network) SetSessionDown(a, b RouterID) {
	sa, sb := n.speakers[a], n.speakers[b]
	if sa == nil || sb == nil {
		return
	}
	pcA, pcB := sa.peers[b], sb.peers[a]
	if pcA == nil || pcB == nil || pcA.down {
		return
	}
	pcA.down, pcB.down = true, true
	n.flushSession(sa, b)
	n.flushSession(sb, a)
}

// SetSessionUp restores a torn-down session and re-advertises current
// state in both directions.
func (n *Network) SetSessionUp(a, b RouterID) {
	sa, sb := n.speakers[a], n.speakers[b]
	if sa == nil || sb == nil {
		return
	}
	pcA, pcB := sa.peers[b], sb.peers[a]
	if pcA == nil || pcB == nil || !pcA.down {
		return
	}
	pcA.down, pcB.down = false, false
	for _, p := range sa.exportablePrefixes() {
		n.requestExport(sa, p, pcA)
	}
	for _, p := range sb.exportablePrefixes() {
		n.requestExport(sb, p, pcB)
	}
}

// flushSession drops every adj-RIB-in entry s holds from neighbor nb
// and every adj-RIB-out entry toward nb, rerunning decisions.
func (n *Network) flushSession(s *Speaker, nb RouterID) {
	// Collect first, mutate after: stores do not allow mutation during
	// a walk.
	var prefixes []netutil.Prefix
	s.adjIn.WalkSorted(func(k ribKey, _ *Route) bool {
		if k.neighbor == nb {
			prefixes = append(prefixes, k.prefix)
		}
		return true
	})
	var outKeys []ribKey
	s.adjOut.WalkSorted(func(k ribKey, _ *Route) bool {
		if k.neighbor == nb {
			outKeys = append(outKeys, k)
		}
		return true
	})
	for _, k := range outKeys {
		s.adjOut.Withdraw(k)
	}
	netutil.SortPrefixes(prefixes)
	for _, p := range prefixes {
		var before *Route
		if n.incremental {
			before = s.effectiveCandidate(p, nb)
		}
		if s.applyImport(p, nb, nil, n.clock) {
			if n.incremental {
				n.decide(s, p, nb, before, nil)
			} else {
				n.decideAndExport(s, p)
			}
		}
	}
}

// SetPrefixPrepend changes the prepending applied to one prefix when
// exporting to neighbor nb, leaving other prefixes untouched, and
// re-exports that prefix. This is how the experiments adjust the
// measurement prefix without disturbing other announcements.
func (n *Network) SetPrefixPrepend(id, nb RouterID, p netutil.Prefix, prepends int) {
	s := n.speakers[id]
	if s == nil {
		return
	}
	pcN := s.peers[nb]
	if pcN == nil {
		return
	}
	_, hadOverride := pcN.PrefixPrepend[p]
	if hadOverride && pcN.PrefixPrepend[p] == prepends {
		return
	}
	if pcN.PrefixPrepend == nil {
		pcN.PrefixPrepend = make(map[netutil.Prefix]int)
	}
	pcN.PrefixPrepend[p] = prepends
	// Unified no-op detection with SetExportPrepend: recording an
	// override equal to the session default leaves the effective
	// prepend — and thus the announcement — unchanged. The override
	// is still installed (it pins the prefix against future
	// session-level changes) but nothing is enqueued.
	if !hadOverride && pcN.ExportPrepend == prepends {
		return
	}
	n.requestExport(s, p, pcN)
}

// SetImportDeny installs (or clears, with nil) a speaker-wide import
// filter applied on every session after the per-session
// PeerConfig.ImportDeny, with identical semantics (deny turns the
// announcement into a withdrawal). This is the hook route-origin
// validation attaches to (rpki.Table.DropInvalid): one predicate per
// deploying AS, independent of per-session policy. Routes already in
// the adj-RIB-in that the new filter denies are withdrawn immediately,
// so installing a filter mid-life behaves as if every neighbor
// re-announced its current routes through it.
func (n *Network) SetImportDeny(id RouterID, fn func(*Route) bool) {
	s := n.speakers[id]
	if s == nil {
		return
	}
	s.importDeny = fn
	if fn == nil {
		return
	}
	// Retroactive pass: collect denied entries first (stores do not
	// allow mutation during a walk), then withdraw through the normal
	// import path so RFD and decision bookkeeping stay consistent.
	var denied []ribKey
	s.adjIn.WalkSorted(func(k ribKey, r *Route) bool {
		if fn(r) {
			denied = append(denied, k)
		}
		return true
	})
	for _, k := range denied {
		var before *Route
		if n.incremental {
			before = s.effectiveCandidate(k.prefix, k.neighbor)
		}
		if s.applyImport(k.prefix, k.neighbor, nil, n.clock) {
			if n.incremental {
				n.decide(s, k.prefix, k.neighbor, before, nil)
			} else {
				n.decideAndExport(s, k.prefix)
			}
		}
	}
}

// SetImportLocalPref replaces the import localpref override on s's
// session from neighbor nb (0 restores the relationship-tier default,
// see PeerConfig.ImportLocalPref) and returns the previous override.
// applyImport bakes the localpref into each adj-RIB-in route at
// arrival, so the change is applied retroactively: every route already
// learned over the session is re-installed at the new preference and
// re-decided through the incremental path, exactly as if the neighbor
// re-announced it after the policy change. This is the optimizer's
// localpref gene lever.
func (n *Network) SetImportLocalPref(id, nb RouterID, pref uint32) uint32 {
	s := n.speakers[id]
	if s == nil {
		return 0
	}
	pc := s.peers[nb]
	if pc == nil {
		return 0
	}
	old := pc.ImportLocalPref
	if old == pref {
		return old
	}
	pc.ImportLocalPref = pref
	lp := pc.localPref()
	// Retroactive pass: collect the session's entries first (stores do
	// not allow mutation during a walk), then re-install each at the
	// effective preference. Routes are immutable once installed, so the
	// update is a clone + Install, never an in-place edit — stale
	// pointers in the decision cache then miss (safe) instead of
	// aliasing the new value.
	type reinstall struct {
		k ribKey
		r *Route
	}
	var todo []reinstall
	s.adjIn.WalkSorted(func(k ribKey, r *Route) bool {
		if k.neighbor == nb && r.LocalPref != lp {
			todo = append(todo, reinstall{k, r})
		}
		return true
	})
	for _, it := range todo {
		var before *Route
		if n.incremental {
			before = s.effectiveCandidate(it.k.prefix, nb)
		}
		updated := *it.r
		updated.LocalPref = lp
		s.adjIn.Install(it.k, &updated)
		if n.incremental {
			n.decide(s, it.k.prefix, nb, before, s.effectiveCandidate(it.k.prefix, nb))
		} else {
			n.decideAndExport(s, it.k.prefix)
		}
	}
	return old
}

// SetExportAllow replaces the route-class set s exports toward
// neighbor nb and re-exports every affected prefix, returning the
// previous set. This is the route-leak lever: widening a multihomed
// customer's export policy toward a provider to the full class set
// re-advertises provider- and peer-learned routes in violation of
// Gao-Rexford export, and restoring the returned set ends the leak
// (narrowing withdraws the no-longer-exportable prefixes).
func (n *Network) SetExportAllow(id, nb RouterID, allow ClassSet) ClassSet {
	s := n.speakers[id]
	if s == nil {
		return 0
	}
	pc := s.peers[nb]
	if pc == nil {
		return 0
	}
	old := pc.ExportAllow
	if old == allow {
		return old
	}
	pc.ExportAllow = allow
	for _, p := range s.exportablePrefixes() {
		n.requestExport(s, p, pc)
	}
	return old
}

// exportablePrefixes lists prefixes with any local state, sorted.
func (s *Speaker) exportablePrefixes() []netutil.Prefix {
	set := make(map[netutil.Prefix]bool)
	for p := range s.originated {
		set[p] = true
	}
	s.locRib.WalkSorted(func(k ribKey, _ *Route) bool {
		set[k.prefix] = true
		return true
	})
	s.adjOut.WalkSorted(func(k ribKey, _ *Route) bool {
		set[k.prefix] = true
		return true
	})
	out := make([]netutil.Prefix, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	netutil.SortPrefixes(out)
	return out
}

// decideAndExport reruns the full decision at s for p and, on change,
// exports to every neighbor. This is the reference path; incremental
// mode uses Network.decide (see incremental.go) instead.
func (n *Network) decideAndExport(s *Speaker, p netutil.Prefix) {
	n.metrics.decisionRuns.Inc()
	n.inc.DecisionRuns++
	n.inc.FullScans++
	n.metrics.fullScans.Inc()
	_, changed := s.runDecision(p)
	if changed {
		n.metrics.bestChanges.Inc()
		n.inc.BestChanges++
	}
	n.exportAfterDecision(s, p, changed)
}

// exportAfterDecision performs the post-decision export fan-out,
// identically for the full and incremental paths: on change every
// session re-exports; without one only VRF-filtered (ExportBestOf)
// sessions do, since their announcement can move without the loc-RIB.
func (n *Network) exportAfterDecision(s *Speaker, p netutil.Prefix, changed bool) {
	if !changed {
		for _, nb := range s.peerOrder {
			pc := s.peers[nb]
			if pc.ExportBestOf != nil {
				n.exportToPeer(s, p, pc)
			}
		}
		return
	}
	for _, nb := range s.peerOrder {
		n.exportToPeer(s, p, s.peers[nb])
	}
}

// exportToPeer computes the announcement for one session and enqueues
// it if it differs from what was last sent, honouring the session's
// MRAI: inside the interval the export is deferred to a flush timer,
// so rapid best-path changes collapse into one update (RFC 4271
// §9.2.1.1; the reproduction applies the interval to withdrawals too).
func (n *Network) exportToPeer(s *Speaker, p netutil.Prefix, pc *PeerConfig) {
	if pc == nil || pc.down {
		return
	}
	// Collectors never re-export.
	if s.Collector {
		return
	}
	if pc.MRAI > 0 {
		k := ribKey{p, pc.Neighbor}
		if last, ok := s.mraiLast[k]; ok && n.clock < last+pc.MRAI {
			if !s.mraiPending[k] {
				s.mraiPending[k] = true
				n.queue.Push(vtime.Time(last+pc.MRAI), &event{
					to:     s.ID,
					from:   pc.Neighbor,
					prefix: p,
					mrai:   true,
				})
			}
			return
		}
	}
	n.sendExport(s, p, pc)
}

// sendExport performs the actual adj-RIB-out comparison and enqueue.
func (n *Network) sendExport(s *Speaker, p netutil.Prefix, pc *PeerConfig) {
	r := s.exportRoute(p, pc)
	k := ribKey{p, pc.Neighbor}
	prev := s.adjOut.Get(k)
	if announcementEqual(prev, r) {
		return
	}
	if r == nil {
		s.adjOut.Withdraw(k)
	} else {
		s.adjOut.Install(k, r)
	}
	delay := pc.Delay
	if delay <= 0 {
		delay = n.DefaultDelay
	}
	if pc.MRAI > 0 {
		s.mraiLast[ribKey{p, pc.Neighbor}] = n.clock
	}
	n.queue.Push(vtime.Time(n.clock+delay), &event{
		to:     pc.Neighbor,
		from:   s.ID,
		prefix: p,
		route:  r,
	})
}

// Run processes queued events until the network is quiescent or the
// clock would pass `until` (use MaxTime to drain fully). It returns
// the number of events processed.
func (n *Network) Run(until Time) int {
	processed := 0
	for {
		it, ok := n.queue.Peek()
		if !ok || Time(it.At) > until {
			break
		}
		n.queue.Pop()
		if Time(it.At) > n.clock {
			n.clock = Time(it.At)
		}
		n.deliver(it.V)
		processed++
	}
	n.eventsProcessed += processed
	return processed
}

// MaxTime is a time later than any experiment uses.
const MaxTime = Time(1 << 40)

// RunToQuiescence drains the queue completely.
func (n *Network) RunToQuiescence() int { return n.Run(MaxTime) }

func (n *Network) deliver(e *event) {
	s := n.speakers[e.to]
	if s == nil {
		return
	}
	// Updates in flight when the session went down are lost.
	if pcIn := s.peers[e.from]; pcIn != nil && pcIn.down && !e.rfd {
		return
	}
	if e.mrai {
		// Flush timer at the sender: re-evaluate the deferred export.
		pcOut := s.peers[e.from]
		k := ribKey{e.prefix, e.from}
		s.mraiPending[k] = false
		if pcOut != nil && !pcOut.down && !s.Collector {
			n.sendExport(s, e.prefix, pcOut)
		}
		return
	}
	if e.rfd {
		k := ribKey{e.prefix, e.from}
		cfg := s.peers[e.from].RFD
		if cfg != nil && s.rfdRecheck(k, cfg, n.clock) {
			if n.incremental {
				// The suppressed route became usable: its effective
				// candidate went from nil to the held adj-in entry.
				n.decide(s, e.prefix, e.from, nil, s.adjIn.Get(k))
			} else {
				n.decideAndExport(s, e.prefix)
			}
		}
		return
	}

	n.Churn.TotalMessages++
	n.metrics.updatesDelivered.Inc()
	if s.Collector && (n.CollectorFeedDown == nil || !n.CollectorFeedDown(s.ID, n.clock)) {
		pcIn := s.peers[e.from]
		var peerAS asn.AS
		if pcIn != nil {
			peerAS = pcIn.NeighborAS
		}
		rec := UpdateRecord{
			At:        n.clock,
			Collector: s.ID,
			PeerAS:    peerAS,
			Prefix:    e.prefix,
			Announce:  e.route != nil,
		}
		if e.route != nil {
			rec.Path = e.route.Path
		}
		n.Churn.Records = append(n.Churn.Records, rec)
	}

	var before *Route
	if n.incremental {
		before = s.effectiveCandidate(e.prefix, e.from)
	}
	changed := s.applyImport(e.prefix, e.from, e.route, n.clock)
	if !changed {
		return
	}
	// If RFD suppressed the route, schedule the reuse recheck.
	if pcIn := s.peers[e.from]; pcIn != nil && pcIn.RFD != nil {
		k := ribKey{e.prefix, e.from}
		if reuse := s.rfdReuseTime(k, pcIn.RFD); reuse >= 0 {
			n.queue.Push(vtime.Time(reuse+1), &event{
				to:     s.ID,
				from:   e.from,
				prefix: e.prefix,
				rfd:    true,
			})
		}
	}
	if n.incremental {
		n.decide(s, e.prefix, e.from, before, s.effectiveCandidate(e.prefix, e.from))
	} else {
		n.decideAndExport(s, e.prefix)
	}
}

// NextHop returns the neighbor the speaker forwards traffic for p to,
// following its best route. ok is false when the speaker has no route.
// A self-originated best route returns (id, true): traffic terminates.
func (n *Network) NextHop(id RouterID, p netutil.Prefix) (RouterID, bool) {
	s := n.speakers[id]
	if s == nil {
		return 0, false
	}
	best := s.locRib.Get(locKey(p))
	if best == nil {
		return 0, false
	}
	if best.From == 0 {
		return id, true
	}
	return best.From, true
}

// DefaultPrefix is 0.0.0.0/0, the fallback route of NextHopLPM.
var DefaultPrefix = netutil.PrefixFrom(0, 0)

// NextHopLPM is NextHop with longest-prefix-match semantics reduced to
// the two-entry case the data plane needs: the specific prefix if the
// speaker holds a route for it, otherwise its default route (the §1
// "import only a default route" alternative).
func (n *Network) NextHopLPM(id RouterID, p netutil.Prefix) (RouterID, bool) {
	if next, ok := n.NextHop(id, p); ok {
		return next, true
	}
	return n.NextHop(id, DefaultPrefix)
}

// ForwardPath walks AS-level forwarding from speaker id toward prefix
// p, returning the sequence of router IDs ending at the originating
// speaker. ok is false on a routing loop or a missing route.
func (n *Network) ForwardPath(id RouterID, p netutil.Prefix) ([]RouterID, bool) {
	return n.forwardPath(id, p, n.NextHop)
}

// ForwardPathLPM is ForwardPath with per-hop default-route fallback.
// The walk ends when a hop's route (specific or default) terminates
// locally; a walk that ends at a default-originating speaker without a
// specific route means the packet would be discarded there.
func (n *Network) ForwardPathLPM(id RouterID, p netutil.Prefix) ([]RouterID, bool) {
	return n.forwardPath(id, p, n.NextHopLPM)
}

func (n *Network) forwardPath(id RouterID, p netutil.Prefix, hop func(RouterID, netutil.Prefix) (RouterID, bool)) ([]RouterID, bool) {
	var path []RouterID
	seen := make(map[RouterID]bool)
	cur := id
	for {
		if seen[cur] {
			return path, false // forwarding loop
		}
		seen[cur] = true
		path = append(path, cur)
		next, ok := hop(cur, p)
		if !ok {
			return path, false
		}
		if next == cur {
			return path, true
		}
		cur = next
	}
}
