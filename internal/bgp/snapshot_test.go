package bgp

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asn"
	"repro/internal/netutil"
	snap "repro/internal/snapshot"
)

var updateGolden = flag.Bool("update", false, "rewrite golden snapshot files")

// snapNet builds the same deterministic random world as incPair (a
// Gao-Rexford economy plus one collector), so a snapshot of one build
// can be restored into another.
func snapNet(seed int64, n int) *Network {
	rng := rand.New(rand.NewSource(seed)) // #nosec test randomness
	net := randomGaoRexfordNetwork(rng, n)
	col := net.AddSpeaker(RouterID(n+1), asn.AS(64500), "collector")
	col.Collector = true
	net.Connect(RouterID(1+rng.Intn(n)), col.ID,
		PeerConfig{ClassifyAs: ClassCustomer, ImportLocalPref: LocalPrefCustomer, ExportAllow: GaoRexfordExport(ClassCustomer)},
		PeerConfig{ClassifyAs: ClassProvider, ExportAllow: GaoRexfordExport(ClassProvider)})
	return net
}

func mustSnapshot(t *testing.T, n *Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := n.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return buf.Bytes()
}

// TestRestoreEquivalence is the differential harness of the snapshot
// subsystem: across seeds × topology sizes × engine modes it drives a
// network through random events, snapshots it mid-sequence, restores
// into a freshly built base, and requires the restored network to be
// byte-identical — same re-snapshot bytes, and the same observable
// signature after every further event as the original.
func TestRestoreEquivalence(t *testing.T) {
	for _, incremental := range []bool{false, true} {
		for _, tc := range []struct {
			seed int64
			size int
		}{
			// 3 seeds × 2 topology shapes.
			{1, 10}, {2, 10}, {3, 10},
			{1, 24}, {2, 24}, {3, 24},
		} {
			name := fmt.Sprintf("seed%d_size%d_inc%v", tc.seed, tc.size, incremental)
			t.Run(name, func(t *testing.T) {
				orig := snapNet(tc.seed, tc.size)
				orig.SetIncremental(incremental)
				rng := rand.New(rand.NewSource(tc.seed * 7919)) // #nosec test randomness
				prefixes := []netutil.Prefix{
					netutil.PrefixFrom(0xCB007100, 24), // 203.0.113.0/24
					netutil.PrefixFrom(0xC6336400, 24), // 198.51.100.0/24
					netutil.PrefixFrom(0xC0000200, 24), // 192.0.2.0/24
				}
				ops := randomOps(rng, orig, prefixes, 30)
				mid := len(ops) / 2
				for _, op := range ops[:mid] {
					op(orig)
				}

				data := mustSnapshot(t, orig)
				restored := snapNet(tc.seed, tc.size)
				if err := RestoreNetwork(bytes.NewReader(data), restored); err != nil {
					t.Fatalf("restore: %v", err)
				}
				if got, want := networkSignature(restored), networkSignature(orig); got != want {
					t.Fatalf("restored signature differs:\n--- original ---\n%s\n--- restored ---\n%s", want, got)
				}
				if !bytes.Equal(mustSnapshot(t, restored), data) {
					t.Fatal("re-snapshot of restored network is not byte-identical")
				}
				if orig.Stats() != restored.Stats() {
					t.Fatalf("work counters differ: orig=%+v restored=%+v", orig.Stats(), restored.Stats())
				}
				for i, op := range ops[mid:] {
					op(orig)
					op(restored)
					if got, want := networkSignature(restored), networkSignature(orig); got != want {
						t.Fatalf("signatures diverge after post-restore op %d:\n--- original ---\n%s\n--- restored ---\n%s", i, want, got)
					}
				}
				orig.RunToQuiescence()
				restored.RunToQuiescence()
				if got, want := networkSignature(restored), networkSignature(orig); got != want {
					t.Fatal("signatures diverge after final drain")
				}
			})
		}
	}
}

// mraiRfdNet is a small hand-built network with damping and MRAI
// batching enabled, used to park RFD penalties and a pending MRAI
// flush in flight.
func mraiRfdNet() *Network {
	n := NewNetwork()
	n.AddSpeaker(1, 65001, "origin")
	n.AddSpeaker(2, 65002, "transit")
	n.AddSpeaker(3, 65003, "edge")
	col := n.AddSpeaker(4, 64500, "collector")
	col.Collector = true
	n.Connect(1, 2,
		PeerConfig{ClassifyAs: ClassCustomer, ImportLocalPref: LocalPrefCustomer, ExportAllow: GaoRexfordExport(ClassCustomer), MRAI: 40},
		PeerConfig{ClassifyAs: ClassProvider, ImportLocalPref: LocalPrefProvider, ExportAllow: GaoRexfordExport(ClassProvider), RFD: DefaultRFD()})
	n.Connect(2, 3,
		PeerConfig{ClassifyAs: ClassCustomer, ImportLocalPref: LocalPrefCustomer, ExportAllow: GaoRexfordExport(ClassCustomer)},
		PeerConfig{ClassifyAs: ClassProvider, ImportLocalPref: LocalPrefProvider, ExportAllow: GaoRexfordExport(ClassProvider), RFD: DefaultRFD()})
	n.Connect(2, 4,
		PeerConfig{ClassifyAs: ClassCustomer, ImportLocalPref: LocalPrefCustomer, ExportAllow: GaoRexfordExport(ClassCustomer)},
		PeerConfig{ClassifyAs: ClassProvider, ExportAllow: GaoRexfordExport(ClassProvider)})
	return n
}

// driveToMidFlight flaps the measurement prefix until the transit
// speaker holds RFD penalty state and the origin has an MRAI flush
// pending, leaving updates in the queue.
func driveToMidFlight(n *Network) netutil.Prefix {
	p := netutil.PrefixFrom(0xCB007100, 24)
	n.Originate(1, p)
	n.RunToQuiescence()
	for i := 1; i <= 5; i++ {
		n.AdvanceTo(n.Now() + 3)
		n.SetPrefixPrepend(1, 2, p, i%3+1)
		n.Run(n.Now() + 1) // deliberately partial drain
	}
	return p
}

// TestRestoreEquivalenceMidFlight snapshots with RFD penalties
// accumulated and a pending MRAI batch in flight, restores, and
// requires identical behavior through the drain and further flaps.
func TestRestoreEquivalenceMidFlight(t *testing.T) {
	orig := mraiRfdNet()
	p := driveToMidFlight(orig)

	// The scenario must actually be mid-flight, or the test is vacuous.
	transit := orig.Speaker(2)
	k := ribKey{p, RouterID(1)}
	if st := transit.rfd[k]; st == nil || st.penalty <= 0 {
		t.Fatal("scenario did not accumulate RFD penalty at the transit speaker")
	}
	origin := orig.Speaker(1)
	if !origin.mraiPending[ribKey{p, RouterID(2)}] {
		t.Fatal("scenario did not leave an MRAI flush pending")
	}
	if orig.queue.Len() == 0 {
		t.Fatal("scenario left no events in flight")
	}

	data := mustSnapshot(t, orig)
	restored := mraiRfdNet()
	if err := RestoreNetwork(bytes.NewReader(data), restored); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !bytes.Equal(mustSnapshot(t, restored), data) {
		t.Fatal("re-snapshot of restored network is not byte-identical")
	}
	// Drain and keep flapping: damping decay, reuse timers, and the
	// deferred MRAI flush must all fire identically.
	step := func(n *Network) {
		n.RunToQuiescence()
		for i := 0; i < 4; i++ {
			n.AdvanceTo(n.Now() + 120)
			n.SetPrefixPrepend(1, 2, p, i%2)
			n.RunToQuiescence()
		}
		n.AdvanceTo(n.Now() + 7200)
		n.SetPrefixPrepend(1, 2, p, 3)
		n.RunToQuiescence()
	}
	step(orig)
	step(restored)
	if got, want := networkSignature(restored), networkSignature(orig); got != want {
		t.Fatalf("post-restore behavior diverges:\n--- original ---\n%s\n--- restored ---\n%s", want, got)
	}
}

// TestSnapshotDeterministic pins the satellite requirement that
// serialization never leaks map order: two consecutive Snapshot calls
// must be byte-equal, on both a random world and the mid-flight
// damping scenario.
func TestSnapshotDeterministic(t *testing.T) {
	nets := map[string]*Network{
		"random": func() *Network {
			n := snapNet(7, 18)
			n.SetIncremental(true)
			rng := rand.New(rand.NewSource(99)) // #nosec test randomness
			prefixes := []netutil.Prefix{netutil.PrefixFrom(0xCB007100, 24), netutil.PrefixFrom(0xC0000200, 24)}
			for _, op := range randomOps(rng, n, prefixes, 12) {
				op(n)
			}
			return n
		}(),
		"midflight": func() *Network {
			n := mraiRfdNet()
			driveToMidFlight(n)
			return n
		}(),
	}
	for name, n := range nets {
		a, b := mustSnapshot(t, n), mustSnapshot(t, n)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: two consecutive snapshots differ (%d vs %d bytes)", name, len(a), len(b))
		}
	}
}

func TestSnapshotInsideBatchFails(t *testing.T) {
	n := snapNet(1, 8)
	n.SetIncremental(true)
	var err error
	n.Batch(func() {
		var buf bytes.Buffer
		err = n.Snapshot(&buf)
	})
	if err == nil {
		t.Fatal("Snapshot inside Batch succeeded")
	}
}

func TestRestoreFingerprintMismatch(t *testing.T) {
	orig := snapNet(1, 10)
	data := mustSnapshot(t, orig)
	other := snapNet(2, 10) // different world
	if err := RestoreNetwork(bytes.NewReader(data), other); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
	}
	// The failed restore must leave the base untouched.
	if got, want := networkSignature(other), networkSignature(snapNet(2, 10)); got != want {
		t.Fatal("failed restore mutated the base network")
	}
}

// goldenNet is the frozen canonical network of the golden-format test:
// the mid-flight damping scenario, whose state exercises every section
// (RIBs, RFD, MRAI, queue, churn, caches).
func goldenNet() *Network {
	n := mraiRfdNet()
	n.SetIncremental(true)
	driveToMidFlight(n)
	return n
}

// TestGoldenSnapshotFormat pins the current wire format: encoding the
// canonical network must reproduce the committed golden bytes, and the
// committed bytes must restore to the canonical state. A failure after
// a codec change means the format changed: bump
// snapshot.EngineVersion, document it in internal/snapshot/FORMAT.md,
// and regenerate with -update.
func TestGoldenSnapshotFormat(t *testing.T) {
	golden := filepath.Join("testdata", "golden_v2.rbgp")
	data := mustSnapshot(t, goldenNet())
	if *updateGolden {
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("encoding the canonical network produced %d bytes differing from the %d golden bytes: codec change without a format-version bump (see internal/snapshot/FORMAT.md)", len(data), len(want))
	}
	restored := mraiRfdNet()
	if err := RestoreNetwork(bytes.NewReader(want), restored); err != nil {
		t.Fatalf("golden restore: %v", err)
	}
	if got, wantSig := networkSignature(restored), networkSignature(goldenNet()); got != wantSig {
		t.Fatal("golden snapshot restored to a different state")
	}
}

// TestSnapshotVersionPinned fails when EngineVersion is bumped without
// regenerating the golden file, closing the other half of the
// version-bump contract.
func TestSnapshotVersionPinned(t *testing.T) {
	data := mustSnapshot(t, goldenNet())
	if v := uint16(data[4])<<8 | uint16(data[5]); v != snap.EngineVersion {
		t.Fatalf("header version %d != EngineVersion %d", v, snap.EngineVersion)
	}
	if snap.EngineVersion != 2 {
		t.Log("EngineVersion bumped: commit a new testdata/golden_v<N>.rbgp (keep the old ones as legacy fixtures) and document the change in internal/snapshot/FORMAT.md")
	}
}

// TestLegacyV1Restore pins backward compatibility: the frozen v1
// golden file (inline paths, no path-table section) must keep
// restoring to the canonical network state even though new snapshots
// are written in v2. golden_v1.rbgp is never regenerated — it is the
// compatibility contract itself.
func TestLegacyV1Restore(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_v1.rbgp"))
	if err != nil {
		t.Fatalf("read legacy golden (frozen fixture, never regenerated): %v", err)
	}
	if v := uint16(want[4])<<8 | uint16(want[5]); v != 1 {
		t.Fatalf("legacy fixture claims version %d, want 1 — was it overwritten?", v)
	}
	restored := mraiRfdNet()
	if err := RestoreNetwork(bytes.NewReader(want), restored); err != nil {
		t.Fatalf("v1 restore: %v", err)
	}
	if got, wantSig := networkSignature(restored), networkSignature(goldenNet()); got != wantSig {
		t.Fatal("v1 snapshot restored to a different state")
	}
	// A restored legacy network must re-snapshot in the current format
	// and round-trip through it.
	reenc := mustSnapshot(t, restored)
	if v := uint16(reenc[4])<<8 | uint16(reenc[5]); v != snap.EngineVersion {
		t.Fatalf("re-encoded legacy network claims version %d, want %d", v, snap.EngineVersion)
	}
	again := mraiRfdNet()
	if err := RestoreNetwork(bytes.NewReader(reenc), again); err != nil {
		t.Fatalf("v2 re-restore: %v", err)
	}
	if got, wantSig := networkSignature(again), networkSignature(goldenNet()); got != wantSig {
		t.Fatal("v1→v2 upgrade round-trip changed the state")
	}
}
