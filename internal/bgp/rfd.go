package bgp

import "math"

// RFDConfig parametrizes route-flap damping per RFC 2439 as deployed
// in practice (RIPE-580 values). A router keeps a penalty per
// (prefix, BGP session); each flap adds to the penalty, the penalty
// decays exponentially, and while it exceeds the suppress threshold
// the route is not used.
//
// The paper's experiment schedule (one announcement change per hour,
// §3.3) is designed so that no reasonable RFD configuration suppresses
// the measurement prefix; the reproduction includes RFD so that this
// property is demonstrated rather than assumed.
type RFDConfig struct {
	// PenaltyPerFlap is added on each update/withdrawal (1000 in
	// common implementations).
	PenaltyPerFlap float64
	// SuppressThreshold suppresses the route when exceeded (2000).
	SuppressThreshold float64
	// ReuseThreshold re-enables a suppressed route once the decayed
	// penalty falls below it (750).
	ReuseThreshold float64
	// HalfLife is the penalty decay half-life in seconds (900 = 15m).
	HalfLife Time
	// MaxSuppress caps the suppression duration in seconds (3600).
	MaxSuppress Time
}

// DefaultRFD returns the RIPE-580 recommended parameters.
func DefaultRFD() *RFDConfig {
	return &RFDConfig{
		PenaltyPerFlap:    1000,
		SuppressThreshold: 2000,
		ReuseThreshold:    750,
		HalfLife:          900,
		MaxSuppress:       3600,
	}
}

// rfdState is the per-(prefix, session) damping state.
type rfdState struct {
	penalty    float64
	lastUpdate Time
	suppressed bool
	suppressAt Time
}

// decayTo brings the penalty forward to time t.
func (s *rfdState) decayTo(t Time, cfg *RFDConfig) {
	if t <= s.lastUpdate || cfg.HalfLife <= 0 {
		s.lastUpdate = t
		return
	}
	dt := float64(t - s.lastUpdate)
	s.penalty *= math.Exp2(-dt / float64(cfg.HalfLife))
	s.lastUpdate = t
}

// Flap records a flap at time t and returns whether the route is now
// suppressed.
func (s *rfdState) Flap(t Time, cfg *RFDConfig) bool {
	s.decayTo(t, cfg)
	s.penalty += cfg.PenaltyPerFlap
	if !s.suppressed && s.penalty > cfg.SuppressThreshold {
		s.suppressed = true
		s.suppressAt = t
	}
	s.refresh(t, cfg)
	return s.suppressed
}

// Suppressed reports whether the route is suppressed at time t.
func (s *rfdState) Suppressed(t Time, cfg *RFDConfig) bool {
	s.decayTo(t, cfg)
	s.refresh(t, cfg)
	return s.suppressed
}

// refresh applies reuse-threshold and max-suppress release rules.
func (s *rfdState) refresh(t Time, cfg *RFDConfig) {
	if !s.suppressed {
		return
	}
	if s.penalty < cfg.ReuseThreshold || t-s.suppressAt >= cfg.MaxSuppress {
		s.suppressed = false
	}
}
