package bgp

import "repro/internal/netutil"

// The RIB store abstraction. A speaker's three RIBs — adj-RIB-in,
// loc-RIB, adj-RIB-out — used to be three map fields with ad-hoc
// access patterns spread over the engine. They are now values of one
// small interface, ribStore, with two implementations:
//
//   - mapStore: the historical map[ribKey]*Route layout, pointer-exact
//     with the old fields. The default, and the reference semantics
//     the differential tests compare against.
//   - arenaStore (arena.go): a memory-compact layout that packs each
//     route into a fixed 40-byte record in a per-speaker arena, interns
//     AS paths in a network-wide path table, and delta-encodes the
//     loc-RIB against adj-RIB-in by sharing records. Selected with
//     Network.SetCompactRIB(true).
//
// The loc-RIB is keyed by prefix only; its store keys use neighbor 0
// (RouterID 0 is reserved — Route.From == 0 already means "locally
// originated" throughout the engine, so no session can use it).
//
// Interface contract, relied on by the engine and the snapshot layer:
//
//   - Install/Get round-trip semantic route values exactly, including
//     LearnedAt. mapStore additionally round-trips pointer identity;
//     arenaStore returns materialized routes but keeps the returned
//     pointer STABLE for an unchanged slot (repeated Gets return the
//     same *Route until the slot is installed over or withdrawn).
//     The incremental decision cache and the snapshot route index key
//     on candidate pointers, so slot-stable pointers are load-bearing,
//     not an optimization.
//   - WalkSorted visits entries ordered by (prefix, neighbor) — prefix
//     order per netutil.ComparePrefixes — the canonical serialization
//     order of the snapshot format.
//   - Mutating the store during WalkSorted is not allowed; callers
//     collect keys first (see flushSession).
type ribStore interface {
	// Get returns the route stored under k, or nil.
	Get(k ribKey) *Route
	// Install stores r (non-nil) under k, replacing any previous entry.
	Install(k ribKey, r *Route)
	// Withdraw removes the entry under k (a no-op when absent).
	Withdraw(k ribKey)
	// WalkSorted visits every entry in (prefix, neighbor) order until
	// fn returns false.
	WalkSorted(fn func(k ribKey, r *Route) bool)
	// Len returns the number of entries.
	Len() int
	// Reset empties the store.
	Reset()
}

// locKey is the loc-RIB store key for p (neighbor 0 by convention).
func locKey(p netutil.Prefix) ribKey { return ribKey{prefix: p} }

// mapStore is the reference ribStore: a bare route map. Install and
// Get preserve pointer identity, which the rest of the engine's
// aliasing (queue events, adj-out entries, the decision cache) was
// originally built on.
type mapStore struct {
	m map[ribKey]*Route
}

func newMapStore() *mapStore { return &mapStore{m: make(map[ribKey]*Route)} }

func (st *mapStore) Get(k ribKey) *Route { return st.m[k] }

func (st *mapStore) Install(k ribKey, r *Route) {
	if r == nil {
		panic("bgp: Install(nil route); use Withdraw")
	}
	st.m[k] = r
}

func (st *mapStore) Withdraw(k ribKey) { delete(st.m, k) }

func (st *mapStore) Len() int { return len(st.m) }

func (st *mapStore) Reset() { st.m = make(map[ribKey]*Route) }

func (st *mapStore) WalkSorted(fn func(k ribKey, r *Route) bool) {
	for _, k := range sortedKeysRoute(st.m) {
		if !fn(k, st.m[k]) {
			return
		}
	}
}
