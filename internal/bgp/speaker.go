package bgp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/asn"
	"repro/internal/netutil"
)

// ribKey indexes per-(prefix, neighbor) state.
type ribKey struct {
	prefix   netutil.Prefix
	neighbor RouterID
}

// origination holds the attributes of a locally originated prefix.
type origination struct {
	route *Route
}

// Speaker is a BGP router. The reproduction models one speaker per AS
// for ordinary networks; special cases (the measurement origins,
// VRF-split exporters) get additional speakers or per-session export
// filters.
type Speaker struct {
	// ID is the unique router ID (also the final decision tie-break).
	ID RouterID
	// AS is the speaker's autonomous system.
	AS asn.AS
	// Name is a human-readable label ("Internet2", "NYSERNet", ...).
	Name string
	// Collector marks a public-view peer (RouteViews/RIS-like): every
	// update it receives is recorded in the network churn log, and it
	// never re-exports routes.
	Collector bool

	peers     map[RouterID]*PeerConfig
	peerOrder []RouterID // deterministic export order

	// The three RIBs sit behind the ribStore interface (ribstore.go):
	// the map layout by default, the arena layout under
	// Network.SetCompactRIB. The loc-RIB is keyed with neighbor 0.
	adjIn      ribStore
	adjOut     ribStore
	locRib     ribStore
	originated map[netutil.Prefix]origination
	rfd        map[ribKey]*rfdState
	suppressed map[ribKey]bool

	// MRAI batching state per (prefix, neighbor).
	mraiLast    map[ribKey]Time
	mraiPending map[ribKey]bool

	// importDeny is a speaker-wide import filter applied after the
	// per-session pc.ImportDeny, with the same semantics (deny turns
	// the announcement into a withdrawal). It models policies an AS
	// applies on every session — RPKI route-origin validation being
	// the motivating case (see Network.SetImportDeny). Kept off
	// PeerConfig so snapshot fingerprints (which encode per-session
	// ImportDeny presence) stay compatible with ROV-enabled worlds.
	importDeny func(*Route) bool

	// medSeen gates the incremental fast path (see incremental.go):
	// set permanently once any nonzero-MED route is seen for a prefix,
	// because MED makes pairwise comparison non-transitive and only a
	// full scan is then sound. Maintained in both engine modes so the
	// mode can be switched mid-life.
	medSeen map[netutil.Prefix]bool
	// decCache memoizes full decision scans per prefix (lazily
	// allocated; see scanDecision).
	decCache map[netutil.Prefix]decCacheEntry

	// metrics points at the owning network's counter set (nil-safe
	// counters; see Network.SetMetrics).
	metrics *netMetrics
}

func newSpeaker(id RouterID, as asn.AS, name string) *Speaker {
	return &Speaker{
		ID:          id,
		AS:          as,
		Name:        name,
		peers:       make(map[RouterID]*PeerConfig),
		adjIn:       newMapStore(),
		adjOut:      newMapStore(),
		locRib:      newMapStore(),
		originated:  make(map[netutil.Prefix]origination),
		rfd:         make(map[ribKey]*rfdState),
		suppressed:  make(map[ribKey]bool),
		mraiLast:    make(map[ribKey]Time),
		mraiPending: make(map[ribKey]bool),
		medSeen:     make(map[netutil.Prefix]bool),
	}
}

// Peer returns the speaker's policy toward neighbor id, or nil.
func (s *Speaker) Peer(id RouterID) *PeerConfig { return s.peers[id] }

// Peers returns neighbor IDs in deterministic order.
func (s *Speaker) Peers() []RouterID {
	out := make([]RouterID, len(s.peerOrder))
	copy(out, s.peerOrder)
	return out
}

func (s *Speaker) addPeer(pc *PeerConfig) {
	if _, dup := s.peers[pc.Neighbor]; dup {
		panic(fmt.Sprintf("bgp: speaker %d already peers with %d", s.ID, pc.Neighbor))
	}
	s.peers[pc.Neighbor] = pc
	s.peerOrder = append(s.peerOrder, pc.Neighbor)
	sort.Slice(s.peerOrder, func(i, j int) bool { return s.peerOrder[i] < s.peerOrder[j] })
}

// Best returns the speaker's current loc-RIB route for prefix p.
func (s *Speaker) Best(p netutil.Prefix) *Route { return s.locRib.Get(locKey(p)) }

// AdjIn returns the route currently held from the given neighbor for
// prefix p, or nil. Suppressed (damped) routes are still visible here.
func (s *Speaker) AdjIn(p netutil.Prefix, neighbor RouterID) *Route {
	return s.adjIn.Get(ribKey{p, neighbor})
}

// AdjInAll returns all adj-RIB-in routes for p in neighbor order.
func (s *Speaker) AdjInAll(p netutil.Prefix) []*Route {
	var out []*Route
	for _, nb := range s.peerOrder {
		if r := s.adjIn.Get(ribKey{p, nb}); r != nil {
			out = append(out, r)
		}
	}
	return out
}

// AdjOut returns what the speaker last announced to neighbor for p.
func (s *Speaker) AdjOut(p netutil.Prefix, neighbor RouterID) *Route {
	return s.adjOut.Get(ribKey{p, neighbor})
}

// candidateSet collects the decision-process inputs for p: the local
// origination first, then unsuppressed adj-RIB-in routes in neighbor
// order. Both runDecision and the incremental scanDecision use it, so
// scan order (and thus tie behavior) is identical across modes.
func (s *Speaker) candidateSet(p netutil.Prefix) []*Route {
	candidates := make([]*Route, 0, len(s.peerOrder)+1)
	if o, ok := s.originated[p]; ok {
		candidates = append(candidates, o.route)
	}
	for _, nb := range s.peerOrder {
		k := ribKey{p, nb}
		if r := s.adjIn.Get(k); r != nil && !s.suppressed[k] {
			candidates = append(candidates, r)
		}
	}
	return candidates
}

// effectiveCandidate returns the route neighbor nb currently
// contributes to p's decision: nil when absent or damped.
func (s *Speaker) effectiveCandidate(p netutil.Prefix, nb RouterID) *Route {
	k := ribKey{p, nb}
	if s.suppressed[k] {
		return nil
	}
	return s.adjIn.Get(k)
}

// runDecision recomputes the best route for p. It returns the new best
// and whether the loc-RIB changed.
func (s *Speaker) runDecision(p netutil.Prefix) (*Route, bool) {
	best, _ := Best(s.candidateSet(p))
	prev := s.locRib.Get(locKey(p))
	if routesEqual(prev, best) {
		return prev, false
	}
	if best == nil {
		s.locRib.Withdraw(locKey(p))
	} else {
		s.locRib.Install(locKey(p), best)
	}
	return best, true
}

// routesEqual reports semantic equality for loc-RIB change detection.
// LearnedAt is deliberately ignored: a re-announcement carrying
// identical attributes does not change the selected route.
func routesEqual(a, b *Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.From == b.From &&
		a.LocalPref == b.LocalPref &&
		a.MED == b.MED &&
		a.Origin == b.Origin &&
		a.Class == b.Class &&
		a.Path.Equal(b.Path) &&
		communitiesEqual(a.Communities, b.Communities)
}

// exportRoute computes the route s would announce to the neighbor
// described by pc, or nil if policy withholds the prefix.
func (s *Speaker) exportRoute(p netutil.Prefix, pc *PeerConfig) *Route {
	var src *Route
	if pc.ExportBestOf != nil {
		// VRF-style export: best among matching adj-RIB-in routes and
		// matching originations, ignoring the loc-RIB choice.
		var cands []*Route
		if o, ok := s.originated[p]; ok && pc.ExportBestOf(o.route) {
			cands = append(cands, o.route)
		}
		for _, nb := range s.peerOrder {
			k := ribKey{p, nb}
			if r := s.adjIn.Get(k); r != nil && !s.suppressed[k] && pc.ExportBestOf(r) {
				cands = append(cands, r)
			}
		}
		src, _ = Best(cands)
	} else {
		src = s.locRib.Get(locKey(p))
	}
	if src == nil {
		return nil
	}
	// Well-known scoping communities: routes *learned* with NoExport
	// or NoAdvertise are never re-advertised (RFC 1997); the
	// originating speaker itself may still announce them.
	if src.From != 0 && (src.Communities.Has(NoExport) || src.Communities.Has(NoAdvertise)) {
		return nil
	}
	if !pc.ExportAllow.Has(src.Class) {
		return nil
	}
	if pc.ExportFilter != nil && !pc.ExportFilter(src) {
		return nil
	}
	// Sender-side loop avoidance: pointless to announce a path already
	// containing the neighbor's AS.
	if src.Path.Contains(pc.NeighborAS) {
		return nil
	}
	comms := src.Communities
	if pc.ExportAddCommunities.Len() > 0 {
		comms = comms.With(pc.ExportAddCommunities.Values()...)
	}
	return &Route{
		Prefix:      p,
		Path:        src.Path.Prepend(s.AS, 1+pc.effectivePrepend(p)),
		Origin:      src.Origin,
		MED:         pc.ExportMED,
		Communities: comms,
	}
}

// announcementEqual compares wire-visible attributes of announcements.
func announcementEqual(a, b *Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.MED == b.MED && a.Origin == b.Origin && a.Path.Equal(b.Path) &&
		communitiesEqual(a.Communities, b.Communities)
}

func communitiesEqual(a, b CommunitySet) bool {
	if a.Len() != b.Len() {
		return false
	}
	av, bv := a.Values(), b.Values()
	for i := range av {
		if av[i] != bv[i] {
			return false
		}
	}
	return true
}

// applyImport installs (or removes, when r is nil) a route from
// neighbor nb at virtual time now, applying import policy and RFD.
// It returns true if the adj-RIB-in (or suppression state) changed in
// a way that requires a decision run.
func (s *Speaker) applyImport(p netutil.Prefix, nb RouterID, r *Route, now Time) bool {
	pc := s.peers[nb]
	if pc == nil {
		return false
	}
	k := ribKey{p, nb}
	prev := s.adjIn.Get(k)

	// Import filtering and receiver-side loop detection turn an
	// announcement into an effective withdrawal.
	if r != nil {
		if r.Path.Contains(s.AS) {
			r = nil
		} else if pc.ImportDeny != nil || s.importDeny != nil {
			filtered := *r
			filtered.Class = pc.ClassifyAs
			if pc.ImportDeny != nil && pc.ImportDeny(&filtered) {
				r = nil
			} else if s.importDeny != nil && s.importDeny(&filtered) {
				r = nil
			}
		}
	}

	if r == nil {
		if prev == nil {
			return false
		}
		s.adjIn.Withdraw(k)
		if pc.RFD != nil {
			s.rfdFlap(k, pc.RFD, now)
		}
		return true
	}

	in := &Route{
		Prefix:      p,
		Path:        r.Path,
		Origin:      r.Origin,
		MED:         r.MED,
		LocalPref:   pc.localPref(),
		Class:       pc.ClassifyAs,
		From:        nb,
		FromAS:      pc.NeighborAS,
		EBGP:        true,
		IGPCost:     pc.IGPCost,
		LearnedAt:   now,
		Communities: r.Communities,
	}
	if prev != nil && routesEqual(prev, in) {
		// Duplicate announcement: no flap, no age reset needed for our
		// model (the route version is unchanged).
		return false
	}
	s.adjIn.Install(k, in)
	if in.MED != 0 {
		s.medSeen[p] = true
	}
	if pc.RFD != nil {
		s.rfdFlap(k, pc.RFD, now)
		return true
	}
	return true
}

func (s *Speaker) rfdFlap(k ribKey, cfg *RFDConfig, now Time) {
	st := s.rfd[k]
	if st == nil {
		st = &rfdState{lastUpdate: now}
		s.rfd[k] = st
	}
	if s.metrics != nil {
		s.metrics.rfdPenalties.Inc()
	}
	if st.Flap(now, cfg) {
		if s.metrics != nil && !s.suppressed[k] {
			s.metrics.rfdSuppressions.Inc()
		}
		s.suppressed[k] = true
	} else {
		delete(s.suppressed, k)
	}
}

// rfdReuseTime returns the virtual time at which the suppressed route
// for k becomes usable again, or -1 if it is not suppressed.
func (s *Speaker) rfdReuseTime(k ribKey, cfg *RFDConfig) Time {
	st := s.rfd[k]
	if st == nil || !st.suppressed {
		return -1
	}
	// Analytic reuse point: penalty * 2^(-dt/halfLife) = reuse.
	var dt Time
	if st.penalty > cfg.ReuseThreshold {
		dt = Time(float64(cfg.HalfLife) * math.Log2(st.penalty/cfg.ReuseThreshold))
	}
	reuse := st.lastUpdate + dt
	if cap := st.suppressAt + cfg.MaxSuppress; cap < reuse {
		reuse = cap
	}
	return reuse
}

// rfdRecheck re-evaluates suppression at time now; returns true if the
// route became usable (decision should rerun).
func (s *Speaker) rfdRecheck(k ribKey, cfg *RFDConfig, now Time) bool {
	st := s.rfd[k]
	if st == nil || !s.suppressed[k] {
		return false
	}
	if !st.Suppressed(now, cfg) {
		delete(s.suppressed, k)
		return s.adjIn.Get(k) != nil
	}
	return false
}
