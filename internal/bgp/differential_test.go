package bgp

import (
	"math/rand"
	"testing"

	"repro/internal/asn"
	"repro/internal/netutil"
)

// Map-vs-arena differential harness: the two ribStore layouts must be
// observationally identical. Every test here builds byte-identical
// topologies, one per layout, drives both through the same event
// stream, and compares full network signatures — RIBs, churn, clock —
// after every step. This is the contract that lets the compact layout
// replace the map layout wholesale at Internet scale.

// diffPair builds two byte-identical random networks, the second on
// the arena-backed compact layout, each with a collector attached so
// churn recording is exercised through both store implementations.
func diffPair(seed int64, n int) (mapNet, arenaNet *Network) {
	build := func(compact bool) *Network {
		rng := rand.New(rand.NewSource(seed)) // #nosec test randomness
		net := NewNetwork()
		net.SetCompactRIB(compact)
		growGaoRexford(net, rng, n)
		col := net.AddSpeaker(RouterID(n+1), asn.AS(64500), "collector")
		col.Collector = true
		net.Connect(RouterID(1+rng.Intn(n)), col.ID,
			PeerConfig{ClassifyAs: ClassCustomer, ImportLocalPref: LocalPrefCustomer, ExportAllow: GaoRexfordExport(ClassCustomer)},
			PeerConfig{ClassifyAs: ClassProvider, ExportAllow: GaoRexfordExport(ClassProvider)})
		return net
	}
	return build(false), build(true)
}

// TestArenaMatchesMapOnRandomEvents is the store-level differential
// check mirroring TestIncrementalMatchesFullOnRandomEvents: random
// topologies and random event sequences (prepends, flaps, originate/
// withdraw churn, partial drains), with byte-equal observable state
// required after every op.
func TestArenaMatchesMapOnRandomEvents(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed * 6211)) // #nosec test randomness
		size := 8 + rng.Intn(25)
		mapNet, arenaNet := diffPair(seed, size)

		prefixes := []netutil.Prefix{
			netutil.MustParsePrefix("203.0.113.0/24"),
			netutil.MustParsePrefix("198.51.100.0/24"),
			netutil.MustParsePrefix("192.0.2.0/24"),
		}
		for _, p := range prefixes {
			origin := RouterID(1 + rng.Intn(size))
			mapNet.Originate(origin, p)
			arenaNet.Originate(origin, p)
		}
		mapNet.RunToQuiescence()
		arenaNet.RunToQuiescence()
		if a, b := networkSignature(mapNet), networkSignature(arenaNet); a != b {
			t.Fatalf("seed %d: initial convergence diverged:\n--- map ---\n%s\n--- arena ---\n%s", seed, a, b)
		}

		ops := randomOps(rng, mapNet, prefixes, 12)
		for i, op := range ops {
			op(mapNet)
			op(arenaNet)
			if a, b := networkSignature(mapNet), networkSignature(arenaNet); a != b {
				t.Fatalf("seed %d: signatures diverged after op %d:\n--- map ---\n%s\n--- arena ---\n%s", seed, i, a, b)
			}
		}
	}
}

// TestArenaMatchesMapIncremental runs the same differential with both
// networks in incremental mode: the dirty-set/decision-cache fast
// paths read and write through the store interface too, and must not
// observe a difference between layouts.
func TestArenaMatchesMapIncremental(t *testing.T) {
	for seed := int64(20); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed * 4099)) // #nosec test randomness
		size := 8 + rng.Intn(20)
		mapNet, arenaNet := diffPair(seed, size)
		mapNet.SetIncremental(true)
		arenaNet.SetIncremental(true)

		prefixes := []netutil.Prefix{
			netutil.MustParsePrefix("203.0.113.0/24"),
			netutil.MustParsePrefix("198.51.100.0/24"),
		}
		for _, p := range prefixes {
			origin := RouterID(1 + rng.Intn(size))
			mapNet.Originate(origin, p)
			arenaNet.Originate(origin, p)
		}
		mapNet.RunToQuiescence()
		arenaNet.RunToQuiescence()

		ops := randomOps(rng, mapNet, prefixes, 10)
		for i, op := range ops {
			op(mapNet)
			op(arenaNet)
			if a, b := networkSignature(mapNet), networkSignature(arenaNet); a != b {
				t.Fatalf("seed %d: incremental signatures diverged after op %d:\n--- map ---\n%s\n--- arena ---\n%s", seed, i, a, b)
			}
		}
	}
}

// TestPropertyArenaCommutingBatches is the satellite property test:
// over random commuting event batches (one prepend op per distinct
// prefix), every application order on either store layout converges to
// the same loc-RIB, byte for byte. The reference signature comes from
// the map layout in identity order; permutations run on the arena
// layout, so the property also covers arena slot-reuse order effects.
func TestPropertyArenaCommutingBatches(t *testing.T) {
	type setOp struct {
		router, nb RouterID
		prefix     netutil.Prefix
		k          int
	}
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed * 15731)) // #nosec test randomness
		size := 8 + rng.Intn(12)
		prefixes := []netutil.Prefix{
			netutil.MustParsePrefix("203.0.113.0/24"),
			netutil.MustParsePrefix("198.51.100.0/24"),
			netutil.MustParsePrefix("192.0.2.0/24"),
			netutil.MustParsePrefix("100.64.0.0/24"),
		}
		origins := make([]RouterID, len(prefixes))
		for i := range prefixes {
			origins[i] = RouterID(1 + rng.Intn(size))
		}
		build := func(compact bool) *Network {
			net := NewNetwork()
			net.SetCompactRIB(compact)
			growGaoRexford(net, rand.New(rand.NewSource(seed)), size) // #nosec test randomness
			for i, p := range prefixes {
				net.Originate(origins[i], p)
			}
			net.RunToQuiescence()
			return net
		}

		template := build(false)
		var batch []setOp
		for _, p := range prefixes {
			id := template.Speakers()[rng.Intn(size)]
			peers := template.Speaker(id).Peers()
			if len(peers) == 0 {
				continue
			}
			batch = append(batch, setOp{router: id, nb: peers[rng.Intn(len(peers))], prefix: p, k: rng.Intn(4)})
		}

		apply := func(net *Network, order []int) string {
			for _, i := range order {
				op := batch[i]
				net.SetPrefixPrepend(op.router, op.nb, op.prefix, op.k)
			}
			net.RunToQuiescence()
			return ribSignature(net)
		}

		ref := make([]int, len(batch))
		for i := range ref {
			ref[i] = i
		}
		want := apply(template, ref)
		for trial := 0; trial < 4; trial++ {
			perm := append([]int(nil), ref...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			if got := apply(build(true), perm); got != want {
				t.Fatalf("seed %d: arena permutation %v diverged from map reference:\n--- map ---\n%s\n--- arena ---\n%s",
					seed, perm, want, got)
			}
		}
	}
}

// TestArenaSharingStats: on a converged compact network the loc-RIB
// overwhelmingly shares adj-RIB-in records (delta encoding), distinct
// paths stay far below route count (interning), and the modelled
// per-route footprint meets the Internet-scale budget.
func TestArenaSharingStats(t *testing.T) {
	rng := rand.New(rand.NewSource(77)) // #nosec test randomness
	net := NewNetwork()
	net.SetCompactRIB(true)
	growGaoRexford(net, rng, 40)
	for i := 0; i < 8; i++ {
		net.Originate(RouterID(1+rng.Intn(40)), netutil.MustParsePrefix(
			[]string{"203.0.113.0/24", "198.51.100.0/24", "192.0.2.0/24", "100.64.0.0/24",
				"10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"}[i]))
	}
	net.RunToQuiescence()

	rs := net.RIBStats()
	if rs.Routes == 0 || rs.Records == 0 {
		t.Fatalf("empty stats on a converged network: %+v", rs)
	}
	locEntries := 0
	for _, id := range net.Speakers() {
		locEntries += net.Speaker(id).locRib.Len()
	}
	if rs.SharedLocRib < locEntries*9/10 {
		t.Errorf("loc-RIB sharing %d/%d below 90%%: delta encoding is not engaging", rs.SharedLocRib, locEntries)
	}
	if rs.DistinctPaths >= rs.Routes/2 {
		t.Errorf("distinct paths %d vs routes %d: interning is not collapsing duplicates", rs.DistinctPaths, rs.Routes)
	}
	// The hard ≤64 budget is gated at Internet scale (see
	// BenchmarkInternetScaleRIB), where path amortisation fully engages;
	// a 40-node toy carries proportionally more path-table overhead.
	if bpr := rs.BytesPerRoute(); bpr > 96 {
		t.Errorf("modelled bytes/route %.1f far above budget even for a toy topology: %+v", bpr, rs)
	}
}

// TestCompactRIBGuards pins the API misuse panics: enabling compact
// mode after speakers exist, and RouterID 0 (reserved as the loc-RIB
// store key) in compact mode.
func TestCompactRIBGuards(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("late SetCompactRIB", func() {
		net := NewNetwork()
		net.AddSpeaker(1, 65001, "")
		net.SetCompactRIB(true)
	})
	expectPanic("RouterID 0 in compact mode", func() {
		net := NewNetwork()
		net.SetCompactRIB(true)
		net.AddSpeaker(0, 65001, "")
	})
}
