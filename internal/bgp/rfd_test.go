package bgp

import (
	"math"
	"testing"

	"repro/internal/netutil"
)

func TestRFDSingleFlapNeverSuppresses(t *testing.T) {
	cfg := DefaultRFD()
	var st rfdState
	if st.Flap(0, cfg) {
		t.Error("one flap suppressed the route")
	}
	if st.Suppressed(10, cfg) {
		t.Error("suppressed after a single flap")
	}
}

func TestRFDHourlyScheduleNeverSuppresses(t *testing.T) {
	// The experiment design: one announcement change per hour for nine
	// configurations (§3.3). With a 15-minute half-life the penalty
	// decays 16x between flaps, so it can never cross the suppress
	// threshold.
	cfg := DefaultRFD()
	var st rfdState
	for i := 0; i < 9; i++ {
		if st.Flap(Time(i*3600), cfg) {
			t.Fatalf("hourly flap %d suppressed the route (penalty %.0f)", i, st.penalty)
		}
	}
	if st.penalty > cfg.SuppressThreshold {
		t.Errorf("penalty %.0f exceeded suppress threshold", st.penalty)
	}
}

func TestRFDRapidFlapsSuppress(t *testing.T) {
	cfg := DefaultRFD()
	var st rfdState
	suppressed := false
	for i := 0; i < 3; i++ {
		suppressed = st.Flap(Time(i*10), cfg)
	}
	if !suppressed {
		t.Fatal("three rapid flaps did not suppress")
	}
	// Penalty decays with the half-life; after enough time the route
	// is reusable.
	if st.Suppressed(30, cfg) != true {
		t.Error("should still be suppressed shortly after")
	}
	if st.Suppressed(30+4*cfg.HalfLife, cfg) {
		t.Error("should be reusable after penalty decays below reuse threshold")
	}
}

func TestRFDMaxSuppressCap(t *testing.T) {
	cfg := DefaultRFD()
	cfg.HalfLife = 100000 // decay effectively frozen
	var st rfdState
	for i := 0; i < 5; i++ {
		st.Flap(Time(i), cfg)
	}
	if !st.Suppressed(10, cfg) {
		t.Fatal("should be suppressed")
	}
	if st.Suppressed(10+cfg.MaxSuppress, cfg) {
		t.Error("MaxSuppress cap did not release the route")
	}
}

func TestRFDDecayHalfLife(t *testing.T) {
	cfg := DefaultRFD()
	st := rfdState{penalty: 1000, lastUpdate: 0}
	st.decayTo(cfg.HalfLife, cfg)
	if math.Abs(st.penalty-500) > 1e-6 {
		t.Errorf("penalty after one half-life = %f, want 500", st.penalty)
	}
	st.decayTo(cfg.HalfLife, cfg) // no time passes
	if math.Abs(st.penalty-500) > 1e-6 {
		t.Errorf("penalty changed with no elapsed time: %f", st.penalty)
	}
}

func TestRFDInEngine(t *testing.T) {
	// A flapping origination through a damped session is suppressed at
	// the receiver and recovers after the reuse timer.
	net := NewNetwork()
	net.AddSpeaker(1, 100, "receiver")
	net.AddSpeaker(2, 200, "flapper")
	net.Connect(2, 1,
		PeerConfig{ClassifyAs: ClassCustomer, ImportLocalPref: LocalPrefCustomer, ExportAllow: GaoRexfordExport(ClassCustomer)},
		PeerConfig{ClassifyAs: ClassProvider, ImportLocalPref: LocalPrefProvider, ExportAllow: GaoRexfordExport(ClassProvider), RFD: DefaultRFD()},
	)
	p := netutil.MustParsePrefix("198.51.100.0/24")
	// Flap rapidly: announce, withdraw, announce, withdraw, announce.
	for i := 0; i < 2; i++ {
		net.Originate(2, p)
		net.Run(net.Now() + 2)
		net.WithdrawOrigination(2, p)
		net.Run(net.Now() + 2)
	}
	net.Originate(2, p)
	net.Run(net.Now() + 2)

	if best := net.Speaker(1).Best(p); best != nil {
		t.Fatalf("damped route still selected: %v", best)
	}
	// Drain including the reuse timer: route returns.
	net.RunToQuiescence()
	if best := net.Speaker(1).Best(p); best == nil {
		t.Fatal("route did not recover after damping expired")
	}
}

func TestRFDHourlyScheduleInEngine(t *testing.T) {
	// End-to-end restatement of the paper's schedule property: with
	// damping enabled, hourly prepend changes never lose the route.
	net := NewNetwork()
	net.AddSpeaker(1, 100, "receiver")
	net.AddSpeaker(2, 200, "origin")
	net.Connect(2, 1,
		PeerConfig{ClassifyAs: ClassCustomer, ImportLocalPref: LocalPrefCustomer, ExportAllow: GaoRexfordExport(ClassCustomer)},
		PeerConfig{ClassifyAs: ClassProvider, ImportLocalPref: LocalPrefProvider, ExportAllow: GaoRexfordExport(ClassProvider), RFD: DefaultRFD()},
	)
	p := netutil.MustParsePrefix("163.253.63.0/24")
	net.Originate(2, p)
	net.RunToQuiescence()
	prepends := []int{4, 3, 2, 1, 0, 0, 0, 0, 0}
	for i, n := range prepends {
		net.AdvanceTo(Time((i + 1) * 3600))
		net.SetExportPrepend(2, 1, n)
		net.RunToQuiescence()
		if best := net.Speaker(1).Best(p); best == nil {
			t.Fatalf("config %d: route suppressed under hourly schedule", i)
		}
	}
}
