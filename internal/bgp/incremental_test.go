package bgp

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/asn"
	"repro/internal/netutil"
)

// This file is the engine-level differential harness for incremental
// recomputation: every test builds two identical networks, runs one in
// full-reconvergence mode and one incrementally, drives both through
// the same event sequence, and requires identical observable state.

// routeSig renders every decision-relevant route attribute (including
// LearnedAt: virtual timing must match across modes too).
func routeSig(r *Route) string {
	if r == nil {
		return "-"
	}
	return fmt.Sprintf("from=%d lp=%d med=%d org=%d cls=%d path=%v igp=%d at=%d ebgp=%v comm=%v",
		r.From, r.LocalPref, r.MED, r.Origin, r.Class, r.Path, r.IGPCost, r.LearnedAt, r.EBGP, r.Communities.Values())
}

// networkSignature captures all observable state: clock, message and
// churn totals, every churn record, and per speaker the loc-RIB,
// adj-RIB-in (with damping state), and adj-RIB-out.
func networkSignature(n *Network) string {
	var b strings.Builder
	fmt.Fprintf(&b, "clock=%d msgs=%d queued=%d\n", n.Now(), n.Churn.TotalMessages, n.queue.Len())
	for _, rec := range n.Churn.Records {
		fmt.Fprintf(&b, "churn at=%d col=%d peer=%d p=%s ann=%v path=%v\n",
			rec.At, rec.Collector, rec.PeerAS, rec.Prefix, rec.Announce, rec.Path)
	}
	for _, id := range n.Speakers() {
		s := n.Speaker(id)
		fmt.Fprintf(&b, "speaker %d\n", id)
		s.locRib.WalkSorted(func(k ribKey, r *Route) bool {
			fmt.Fprintf(&b, "  best %s: %s\n", k.prefix, routeSig(r))
			return true
		})
		s.adjIn.WalkSorted(func(k ribKey, r *Route) bool {
			fmt.Fprintf(&b, "  in %s/%d sup=%v: %s\n", k.prefix, k.neighbor, s.suppressed[k], routeSig(r))
			return true
		})
		s.adjOut.WalkSorted(func(k ribKey, r *Route) bool {
			fmt.Fprintf(&b, "  out %s/%d: %s\n", k.prefix, k.neighbor, routeSig(r))
			return true
		})
	}
	return b.String()
}

func sortRibKeys(keys []ribKey) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.prefix != b.prefix {
			return netutil.ComparePrefixes(a.prefix, b.prefix) < 0
		}
		return a.neighbor < b.neighbor
	})
}

// incPair builds two byte-identical random networks, the second in
// incremental mode, each with one collector speaker attached so churn
// recording is exercised.
func incPair(seed int64, n int) (full, inc *Network) {
	build := func() *Network {
		rng := rand.New(rand.NewSource(seed)) // #nosec test randomness
		net := randomGaoRexfordNetwork(rng, n)
		col := net.AddSpeaker(RouterID(n+1), asn.AS(64500), "collector")
		col.Collector = true
		net.Connect(RouterID(1+rng.Intn(n)), col.ID,
			PeerConfig{ClassifyAs: ClassCustomer, ImportLocalPref: LocalPrefCustomer, ExportAllow: GaoRexfordExport(ClassCustomer)},
			PeerConfig{ClassifyAs: ClassProvider, ExportAllow: GaoRexfordExport(ClassProvider)})
		return net
	}
	full, inc = build(), build()
	inc.SetIncremental(true)
	return full, inc
}

// incOp is one step of a replayable event sequence, applied to both
// networks of a differential pair.
type incOp func(*Network)

// randomOps derives a deterministic op sequence from rng against the
// given network size: prefix-prepend deltas, session-level prepend
// deltas, session flaps, and partial drains.
func randomOps(rng *rand.Rand, template *Network, prefixes []netutil.Prefix, nOps int) []incOp {
	ids := template.Speakers()
	var downA, downB RouterID // at most one session down at a time
	var ops []incOp
	for i := 0; i < nOps; i++ {
		dt := Time(1 + rng.Intn(50))
		switch rng.Intn(5) {
		case 0: // per-prefix prepend delta
			id := ids[rng.Intn(len(ids))]
			peers := template.Speaker(id).Peers()
			if len(peers) == 0 {
				continue
			}
			nb := peers[rng.Intn(len(peers))]
			p := prefixes[rng.Intn(len(prefixes))]
			k := rng.Intn(4)
			ops = append(ops, func(n *Network) {
				n.AdvanceTo(n.Now() + dt)
				n.SetPrefixPrepend(id, nb, p, k)
				n.RunToQuiescence()
			})
		case 1: // session-level prepend delta
			id := ids[rng.Intn(len(ids))]
			peers := template.Speaker(id).Peers()
			if len(peers) == 0 {
				continue
			}
			nb := peers[rng.Intn(len(peers))]
			k := rng.Intn(3)
			ops = append(ops, func(n *Network) {
				n.AdvanceTo(n.Now() + dt)
				n.SetExportPrepend(id, nb, k)
				n.RunToQuiescence()
			})
		case 2: // session flap down
			if downA != 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			peers := template.Speaker(id).Peers()
			if len(peers) == 0 {
				continue
			}
			nb := peers[rng.Intn(len(peers))]
			downA, downB = id, nb
			ops = append(ops, func(n *Network) {
				n.AdvanceTo(n.Now() + dt)
				n.SetSessionDown(id, nb)
				// Deliberately leave the queue partially drained so the
				// flap's consequences interleave with the next op.
				n.Run(n.Now() + 2)
			})
		case 3: // session restore
			if downA == 0 {
				continue
			}
			a, b := downA, downB
			downA, downB = 0, 0
			ops = append(ops, func(n *Network) {
				n.AdvanceTo(n.Now() + dt)
				n.SetSessionUp(a, b)
				n.RunToQuiescence()
			})
		case 4: // originate / withdraw churn at a random speaker
			id := ids[rng.Intn(len(ids))]
			p := prefixes[rng.Intn(len(prefixes))]
			if rng.Intn(2) == 0 {
				ops = append(ops, func(n *Network) {
					n.AdvanceTo(n.Now() + dt)
					n.Originate(id, p)
					n.RunToQuiescence()
				})
			} else {
				ops = append(ops, func(n *Network) {
					n.AdvanceTo(n.Now() + dt)
					n.WithdrawOrigination(id, p)
					n.RunToQuiescence()
				})
			}
		}
	}
	if downA != 0 {
		a, b := downA, downB
		ops = append(ops, func(n *Network) { n.SetSessionUp(a, b); n.RunToQuiescence() })
	}
	ops = append(ops, func(n *Network) { n.RunToQuiescence() })
	return ops
}

// TestIncrementalMatchesFullOnRandomEvents is the engine-level
// differential check: random topologies, random event sequences, and
// after every op the two modes must hold identical observable state —
// RIBs, announcements, churn, virtual clock — while the shared work
// counters stay 1:1.
func TestIncrementalMatchesFullOnRandomEvents(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed * 7919)) // #nosec test randomness
		size := 8 + rng.Intn(25)
		full, inc := incPair(seed, size)

		prefixes := []netutil.Prefix{
			netutil.MustParsePrefix("203.0.113.0/24"),
			netutil.MustParsePrefix("198.51.100.0/24"),
			netutil.MustParsePrefix("192.0.2.0/24"),
		}
		for _, p := range prefixes {
			origin := RouterID(1 + rng.Intn(size))
			full.Originate(origin, p)
			inc.Originate(origin, p)
		}
		full.RunToQuiescence()
		inc.RunToQuiescence()

		ops := randomOps(rng, full, prefixes, 30)
		for i, op := range ops {
			op(full)
			op(inc)
			if fs, is := networkSignature(full), networkSignature(inc); fs != is {
				t.Fatalf("seed %d: state diverged after op %d:\n--- full ---\n%s\n--- incremental ---\n%s", seed, i, fs, is)
			}
		}
		fst, ist := full.Stats(), inc.Stats()
		if fst.DecisionRuns != ist.DecisionRuns {
			t.Errorf("seed %d: decision runs differ: full %d, incremental %d", seed, fst.DecisionRuns, ist.DecisionRuns)
		}
		if fst.BestChanges != ist.BestChanges {
			t.Errorf("seed %d: best changes differ: full %d, incremental %d", seed, fst.BestChanges, ist.BestChanges)
		}
		if ist.FullScans >= fst.FullScans {
			t.Errorf("seed %d: incremental did %d full scans, full mode %d — no work saved", seed, ist.FullScans, fst.FullScans)
		}
		if ist.FastPath == 0 {
			t.Errorf("seed %d: fast path never taken", seed)
		}
	}
}

// TestNoopPrependSetsEnqueueNothing is the regression test for the
// unified no-op detection: a prepend set that leaves the effective
// value unchanged must enqueue zero dirty pairs, schedule zero events,
// and send zero messages — in both modes.
func TestNoopPrependSetsEnqueueNothing(t *testing.T) {
	full, inc := incPair(42, 12)
	p := netutil.MustParsePrefix("203.0.113.0/24")
	full.Originate(1, p)
	inc.Originate(1, p)
	full.RunToQuiescence()
	inc.RunToQuiescence()

	origin := inc.Speaker(1)
	if len(origin.Peers()) == 0 {
		t.Fatal("origin has no peers")
	}
	nb := origin.Peers()[0]

	check := func(what string, op func(n *Network)) {
		t.Helper()
		base := inc.Stats()
		msgs := inc.Churn.TotalMessages
		op(inc)
		if got := inc.Stats().DirtyPairs; got != base.DirtyPairs {
			t.Errorf("%s: enqueued %d dirty pairs, want 0", what, got-base.DirtyPairs)
		}
		if inc.queue.Len() != 0 {
			t.Errorf("%s: %d events scheduled, want 0", what, inc.queue.Len())
		}
		inc.RunToQuiescence()
		if inc.Churn.TotalMessages != msgs {
			t.Errorf("%s: %d messages sent, want 0", what, inc.Churn.TotalMessages-msgs)
		}
		fullMsgs := full.Churn.TotalMessages
		op(full)
		full.RunToQuiescence()
		if full.Churn.TotalMessages != fullMsgs {
			t.Errorf("%s (full mode): %d messages sent, want 0", what, full.Churn.TotalMessages-fullMsgs)
		}
	}

	// First-time override equal to the session default: historically
	// this skipped the early return and bumped state before the
	// equality check could hit; it must now be a detected no-op.
	sessionDefault := origin.Peer(nb).ExportPrepend
	check("first-time no-op SetPrefixPrepend", func(n *Network) {
		n.SetPrefixPrepend(1, nb, p, sessionDefault)
	})
	// The override must still have been recorded (it pins the prefix).
	if _, ok := inc.Speaker(1).Peer(nb).PrefixPrepend[p]; !ok {
		t.Error("no-op SetPrefixPrepend did not record the override")
	}
	// Repeated override with the same value.
	check("repeated no-op SetPrefixPrepend", func(n *Network) {
		n.SetPrefixPrepend(1, nb, p, sessionDefault)
	})
	// Session-level set to the current value.
	check("no-op SetExportPrepend", func(n *Network) {
		n.SetExportPrepend(1, nb, sessionDefault)
	})
	// A session-level change must not touch the pinned prefix: with p
	// pinned (above) and no other exportable prefix un-pinned, nothing
	// propagates from the origin's own session... other prefixes may
	// exist, so only assert p's announcement is stable.
	before := routeSig(inc.Speaker(1).AdjOut(p, nb))
	inc.SetExportPrepend(1, nb, sessionDefault+3)
	full.SetExportPrepend(1, nb, sessionDefault+3)
	inc.RunToQuiescence()
	full.RunToQuiescence()
	if after := routeSig(inc.Speaker(1).AdjOut(p, nb)); after != before {
		t.Errorf("session-level prepend change moved a pinned prefix:\nbefore %s\nafter  %s", before, after)
	}
	if fs, is := networkSignature(full), networkSignature(inc); fs != is {
		t.Errorf("modes diverged after no-op battery:\n--- full ---\n%s\n--- incremental ---\n%s", fs, is)
	}
}

// TestMEDGateForcesFullScan checks the fast-path soundness gate: once
// a nonzero-MED route is seen for a prefix, that prefix must full-scan
// (MED breaks transitivity), and results must still match full mode.
func TestMEDGateForcesFullScan(t *testing.T) {
	build := func() *Network {
		net := NewNetwork()
		for i := 1; i <= 4; i++ {
			net.AddSpeaker(RouterID(i), asn.AS(100+i), "")
		}
		custCfg := func(med uint32) [2]PeerConfig {
			return [2]PeerConfig{
				{ClassifyAs: ClassCustomer, ImportLocalPref: LocalPrefCustomer, ExportAllow: GaoRexfordExport(ClassCustomer)},
				{ClassifyAs: ClassProvider, ImportLocalPref: LocalPrefProvider, ExportAllow: GaoRexfordExport(ClassProvider), ExportMED: med},
			}
		}
		// Speaker 1 hears prefix routes from its customer 4 over two
		// parallel paths (via 2 and via 3); 4 exports MED toward 3.
		a := custCfg(0)
		net.Connect(1, 2, a[0], a[1])
		b := custCfg(0)
		net.Connect(1, 3, b[0], b[1])
		c := custCfg(0)
		net.Connect(2, 4, c[0], c[1])
		d := custCfg(7)
		net.Connect(3, 4, d[0], d[1])
		return net
	}
	full, inc := build(), build()
	inc.SetIncremental(true)
	p := netutil.MustParsePrefix("203.0.113.0/24")
	full.Originate(4, p)
	inc.Originate(4, p)
	full.RunToQuiescence()
	inc.RunToQuiescence()

	if !inc.Speaker(3).medSeen[p] {
		t.Fatal("speaker 3 received a MED route but medSeen is unset")
	}
	scansBefore := inc.Stats().FullScans
	// Perturb the MED-carrying session: speaker 3's decision must use
	// a full scan, not the fast path.
	full.SetExportPrepend(4, 3, 2)
	inc.SetExportPrepend(4, 3, 2)
	full.RunToQuiescence()
	inc.RunToQuiescence()
	if inc.Stats().FullScans == scansBefore {
		t.Error("MED-gated prefix decided without a full scan")
	}
	if fs, is := networkSignature(full), networkSignature(inc); fs != is {
		t.Errorf("modes diverged with MED present:\n--- full ---\n%s\n--- incremental ---\n%s", fs, is)
	}
}

// TestDecisionCacheHitsOnFlapCycle checks the memo: a session flap
// cycle reproduces an earlier candidate pointer set (down: scan
// without the route; up: fast-path install; down again: same set as
// the first down), so the second removal must hit the cache.
func TestDecisionCacheHitsOnFlapCycle(t *testing.T) {
	build := func() *Network {
		net := NewNetwork()
		for i := 1; i <= 4; i++ {
			net.AddSpeaker(RouterID(i), asn.AS(100+i), "")
		}
		cust := func(provider, c RouterID, prepend int) {
			net.Connect(provider, c,
				PeerConfig{ClassifyAs: ClassCustomer, ImportLocalPref: LocalPrefCustomer, ExportAllow: GaoRexfordExport(ClassCustomer)},
				PeerConfig{ClassifyAs: ClassProvider, ImportLocalPref: LocalPrefProvider, ExportAllow: GaoRexfordExport(ClassProvider), ExportPrepend: prepend})
		}
		// 1 hears 4's prefix via 2 (short) and via 3 (prepended).
		cust(1, 2, 0)
		cust(1, 3, 0)
		cust(2, 4, 0)
		cust(3, 4, 2)
		return net
	}
	full, inc := build(), build()
	inc.SetIncremental(true)
	p := netutil.MustParsePrefix("203.0.113.0/24")
	full.Originate(4, p)
	inc.Originate(4, p)
	full.RunToQuiescence()
	inc.RunToQuiescence()

	if inc.Speaker(1).Best(p).From != 2 {
		t.Fatalf("expected the short path via 2 to win, got %s", routeSig(inc.Speaker(1).Best(p)))
	}
	flap := func(n *Network) {
		n.SetSessionDown(1, 2)
		n.RunToQuiescence()
		n.SetSessionUp(1, 2)
		n.RunToQuiescence()
		n.SetSessionDown(1, 2)
		n.RunToQuiescence()
		n.SetSessionUp(1, 2)
		n.RunToQuiescence()
	}
	flap(full)
	flap(inc)
	if inc.Stats().CacheHits == 0 {
		t.Error("flap cycle produced no decision-cache hits")
	}
	if fs, is := networkSignature(full), networkSignature(inc); fs != is {
		t.Errorf("modes diverged across flap cycle:\n--- full ---\n%s\n--- incremental ---\n%s", fs, is)
	}
}

// TestBatchCollapsesDuplicateTouches checks Batch semantics: multiple
// touches of the same (router, prefix, neighbor) pair inside one batch
// evaluate once, at the final value.
func TestBatchCollapsesDuplicateTouches(t *testing.T) {
	_, inc := incPair(7, 10)
	p := netutil.MustParsePrefix("203.0.113.0/24")
	inc.Originate(1, p)
	inc.RunToQuiescence()
	nb := inc.Speaker(1).Peers()[0]

	base := inc.Stats()
	inc.Batch(func() {
		inc.SetPrefixPrepend(1, nb, p, 3)
		inc.SetPrefixPrepend(1, nb, p, 1)
	})
	st := inc.Stats()
	if got := st.DirtyPairs - base.DirtyPairs; got != 1 {
		t.Errorf("batch enqueued %d dirty pairs, want 1", got)
	}
	if got := st.DirtyEvals - base.DirtyEvals; got != 1 {
		t.Errorf("batch drained %d dirty evals, want 1", got)
	}
	inc.RunToQuiescence()
	out := inc.Speaker(1).AdjOut(p, nb)
	if out == nil {
		t.Fatal("prefix not announced after batch")
	}
	// The batch's final value (1 prepend) applies, not the first (3).
	if got := out.Path.PrependCount(); got != 1 {
		t.Errorf("announced prepend count = %d, want 1 (the batch's final value)", got)
	}
}
