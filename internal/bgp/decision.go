package bgp

// DecisionStep identifies which rule of the BGP decision process chose
// between two routes. The experiment analysis uses this to attribute a
// selection to localpref, path length, or route age (Appendix A).
type DecisionStep uint8

// Decision steps in evaluation order.
const (
	ByNone DecisionStep = iota // routes compared equal on every step
	ByLocalPref
	ByPathLen
	ByOrigin
	ByMED
	ByEBGP
	ByIGPCost
	ByAge
	ByRouterID
)

func (s DecisionStep) String() string {
	switch s {
	case ByNone:
		return "equal"
	case ByLocalPref:
		return "localpref"
	case ByPathLen:
		return "aspath-length"
	case ByOrigin:
		return "origin"
	case ByMED:
		return "med"
	case ByEBGP:
		return "ebgp-over-ibgp"
	case ByIGPCost:
		return "igp-cost"
	case ByAge:
		return "route-age"
	case ByRouterID:
		return "router-id"
	default:
		return "unknown"
	}
}

// Compare applies the BGP decision process to routes a and b for the
// same prefix. It returns a negative value if a is preferred, positive
// if b is preferred, and 0 only if the routes tie on every rule
// (possible only when both come from the same neighbor). The returned
// step names the rule that decided.
//
// The rule order follows the standard implementation (and §2, §A of
// the paper): localpref, AS path length, origin, MED (same neighbor AS
// only), eBGP over iBGP, IGP cost, route age (oldest wins), router ID.
func Compare(a, b *Route) (int, DecisionStep) {
	// 1. Highest localpref.
	if a.LocalPref != b.LocalPref {
		if a.LocalPref > b.LocalPref {
			return -1, ByLocalPref
		}
		return 1, ByLocalPref
	}
	// 2. Shortest AS path.
	if la, lb := a.Path.Len(), b.Path.Len(); la != lb {
		if la < lb {
			return -1, ByPathLen
		}
		return 1, ByPathLen
	}
	// 3. Lowest origin.
	if a.Origin != b.Origin {
		if a.Origin < b.Origin {
			return -1, ByOrigin
		}
		return 1, ByOrigin
	}
	// 4. Lowest MED, only comparable between routes from the same
	// neighboring AS.
	if a.FromAS == b.FromAS && a.MED != b.MED {
		if a.MED < b.MED {
			return -1, ByMED
		}
		return 1, ByMED
	}
	// 5. Prefer eBGP-learned over iBGP-learned.
	if a.EBGP != b.EBGP {
		if a.EBGP {
			return -1, ByEBGP
		}
		return 1, ByEBGP
	}
	// 6. Lowest IGP cost to the exit.
	if a.IGPCost != b.IGPCost {
		if a.IGPCost < b.IGPCost {
			return -1, ByIGPCost
		}
		return 1, ByIGPCost
	}
	// 7. Oldest route (stability preference).
	if a.LearnedAt != b.LearnedAt {
		if a.LearnedAt < b.LearnedAt {
			return -1, ByAge
		}
		return 1, ByAge
	}
	// 8. Lowest router ID of the advertising speaker.
	if a.From != b.From {
		if a.From < b.From {
			return -1, ByRouterID
		}
		return 1, ByRouterID
	}
	return 0, ByNone
}

// Best returns the preferred route among candidates, together with the
// step that decided the final pairwise comparison won by the winner.
// It returns nil for an empty slice. Candidates must share a prefix.
func Best(candidates []*Route) (*Route, DecisionStep) {
	var best *Route
	step := ByNone
	for _, r := range candidates {
		if r == nil {
			continue
		}
		if best == nil {
			best = r
			continue
		}
		if c, s := Compare(r, best); c < 0 {
			best, step = r, s
		} else if c > 0 {
			step = s
		}
	}
	return best, step
}
