package bgp

import (
	"fmt"
	"sort"
)

// Community is a BGP community attribute value (RFC 1997): a 32-bit
// tag conventionally written "asn:value". Operators use communities to
// signal routing policy across AS boundaries — including the
// announcement scoping the measurement experiments rely on (§3.1's
// guarantee that commodity providers never learn the R&E path can be
// enforced with NO_EXPORT-style tagging instead of per-session
// filters).
type Community uint32

// Well-known communities (RFC 1997).
const (
	// NoExport: do not advertise beyond the receiving AS.
	NoExport Community = 0xFFFFFF01
	// NoAdvertise: do not advertise to any other BGP peer at all.
	NoAdvertise Community = 0xFFFFFF02
)

// MakeCommunity builds asn:value.
func MakeCommunity(as uint16, value uint16) Community {
	return Community(uint32(as)<<16 | uint32(value))
}

// String renders "asn:value"; well-known values get their names.
func (c Community) String() string {
	switch c {
	case NoExport:
		return "no-export"
	case NoAdvertise:
		return "no-advertise"
	}
	return fmt.Sprintf("%d:%d", uint32(c)>>16, uint32(c)&0xffff)
}

// CommunitySet is an immutable, sorted set of communities. The zero
// value is the empty set.
type CommunitySet struct {
	cs []Community
}

// NewCommunitySet builds a set (deduplicated, sorted).
func NewCommunitySet(cs ...Community) CommunitySet {
	if len(cs) == 0 {
		return CommunitySet{}
	}
	out := make([]Community, len(cs))
	copy(out, cs)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	uniq := out[:1]
	for _, c := range out[1:] {
		if c != uniq[len(uniq)-1] {
			uniq = append(uniq, c)
		}
	}
	return CommunitySet{cs: uniq}
}

// Has reports membership.
func (s CommunitySet) Has(c Community) bool {
	i := sort.Search(len(s.cs), func(i int) bool { return s.cs[i] >= c })
	return i < len(s.cs) && s.cs[i] == c
}

// Len returns the set size.
func (s CommunitySet) Len() int { return len(s.cs) }

// With returns the set plus the given communities.
func (s CommunitySet) With(cs ...Community) CommunitySet {
	all := make([]Community, 0, len(s.cs)+len(cs))
	all = append(all, s.cs...)
	all = append(all, cs...)
	return NewCommunitySet(all...)
}

// Without returns the set minus c.
func (s CommunitySet) Without(c Community) CommunitySet {
	if !s.Has(c) {
		return s
	}
	out := make([]Community, 0, len(s.cs)-1)
	for _, x := range s.cs {
		if x != c {
			out = append(out, x)
		}
	}
	return CommunitySet{cs: out}
}

// Values returns the members in ascending order (a copy).
func (s CommunitySet) Values() []Community {
	out := make([]Community, len(s.cs))
	copy(out, s.cs)
	return out
}

// String renders "{a:b c:d}".
func (s CommunitySet) String() string {
	if len(s.cs) == 0 {
		return "{}"
	}
	out := "{"
	for i, c := range s.cs {
		if i > 0 {
			out += " "
		}
		out += c.String()
	}
	return out + "}"
}
