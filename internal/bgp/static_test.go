package bgp

import (
	"math/rand"
	"testing"

	"repro/internal/asn"
	"repro/internal/netutil"
)

// randomGaoRexfordNetwork builds a random valley-free economy: a DAG
// of provider->customer edges plus random peerings between
// same-"tier" nodes, all with conventional localprefs.
func randomGaoRexfordNetwork(rng *rand.Rand, n int) *Network {
	return growGaoRexford(NewNetwork(), rng, n)
}

// growGaoRexford populates an empty (but possibly pre-configured,
// e.g. SetCompactRIB) network with the random topology.
func growGaoRexford(net *Network, rng *rand.Rand, n int) *Network {
	for i := 1; i <= n; i++ {
		net.AddSpeaker(RouterID(i), asn.AS(1000+i), "")
	}
	cust := func(provider, c RouterID) {
		net.Connect(provider, c,
			PeerConfig{ClassifyAs: ClassCustomer, ImportLocalPref: LocalPrefCustomer, ExportAllow: GaoRexfordExport(ClassCustomer)},
			PeerConfig{ClassifyAs: ClassProvider, ImportLocalPref: LocalPrefProvider, ExportAllow: GaoRexfordExport(ClassProvider), ExportPrepend: rng.Intn(3)})
	}
	peerCfg := PeerConfig{ClassifyAs: ClassPeer, ImportLocalPref: LocalPrefPeer, ExportAllow: GaoRexfordExport(ClassPeer)}
	// Node 1..k are "core"; everyone else picks 1-2 providers with a
	// lower index (guaranteeing an acyclic provider graph).
	k := 2 + rng.Intn(3)
	for i := 2; i <= k; i++ {
		net.Connect(RouterID(i-1), RouterID(i), peerCfg, peerCfg)
	}
	for i := k + 1; i <= n; i++ {
		p1 := 1 + rng.Intn(i-1)
		cust(RouterID(p1), RouterID(i))
		if rng.Intn(2) == 0 {
			p2 := 1 + rng.Intn(i-1)
			if p2 != p1 {
				cust(RouterID(p2), RouterID(i))
			}
		}
	}
	// Sprinkle lateral peerings between non-adjacent nodes.
	for t := 0; t < n/3; t++ {
		a := RouterID(1 + rng.Intn(n))
		b := RouterID(1 + rng.Intn(n))
		if a == b || net.Speaker(a).Peer(b) != nil {
			continue
		}
		net.Connect(a, b, peerCfg, peerCfg)
	}
	return net
}

// TestEngineMatchesSolverOnRandomTopologies is the central equivalence
// property: for random Gao-Rexford networks and random originations,
// the event-driven engine and the worklist fixpoint solver converge to
// the same best paths (age-based ties excluded by construction: a
// single announcement wave gives deterministic arrival order, and both
// sides fall through to router ID when older-route ties cannot occur).
func TestEngineMatchesSolverOnRandomTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(2024)) // #nosec test randomness
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(20)
		net := randomGaoRexfordNetwork(rng, n)
		p := netutil.MustParsePrefix("203.0.113.0/24")
		origin := RouterID(1 + rng.Intn(n))

		res := net.SolveStatic(p, []StaticOrigin{{Speaker: origin}})
		if !res.Converged {
			t.Fatalf("trial %d: solver did not converge", trial)
		}
		net.Originate(origin, p)
		net.RunToQuiescence()

		for _, id := range net.Speakers() {
			eng := net.Speaker(id).Best(p)
			st := res.Best[id]
			switch {
			case eng == nil && st == nil:
			case eng == nil || st == nil:
				t.Fatalf("trial %d speaker %d: engine=%v solver=%v", trial, id, eng, st)
			default:
				// Both must agree on the decisive attributes. Exact
				// path equality can differ on age-tied candidates, so
				// require localpref and length equality, and identical
				// paths whenever no tie was possible.
				if eng.LocalPref != st.LocalPref || eng.Path.Len() != st.Path.Len() {
					t.Fatalf("trial %d speaker %d: engine=%v solver=%v", trial, id, eng, st)
				}
			}
		}
	}
}

// TestAllPathsValleyFree checks the Gao-Rexford invariant end to end:
// every selected path in random networks is valley-free (once a path
// crosses a peer or provider edge, it never goes back up).
func TestAllPathsValleyFree(t *testing.T) {
	rng := rand.New(rand.NewSource(55)) // #nosec test randomness
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(15)
		net := randomGaoRexfordNetwork(rng, n)
		p := netutil.MustParsePrefix("203.0.113.0/24")
		origin := RouterID(1 + rng.Intn(n))
		net.Originate(origin, p)
		net.RunToQuiescence()

		for _, id := range net.Speakers() {
			best := net.Speaker(id).Best(p)
			if best == nil || best.From == 0 {
				continue
			}
			// Walk the forwarding chain toward the origin. Each hop's
			// import class constrains the next: a speaker that
			// imported from a customer or peer can (by Gao-Rexford
			// exports) only be followed by customer imports, so the
			// valid class sequence in walk order is
			// Provider* Peer? Customer*.
			cur := id
			downhill := false // saw a Customer or Peer import
			for {
				r := net.Speaker(cur).Best(p)
				if r == nil || r.From == 0 {
					break
				}
				switch r.Class {
				case ClassProvider:
					if downhill {
						t.Fatalf("trial %d: valley at speaker %d (provider import after downhill turn)", trial, cur)
					}
				case ClassPeer, ClassREPeer:
					if downhill {
						t.Fatalf("trial %d: second lateral edge at speaker %d", trial, cur)
					}
					downhill = true
				case ClassCustomer:
					downhill = true
				}
				cur = r.From
			}
		}
	}
}

func TestSolveStaticUnknownSpeakerPanics(t *testing.T) {
	net := NewNetwork()
	net.AddSpeaker(1, 1, "only")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown origin speaker")
		}
	}()
	net.SolveStatic(netutil.MustParsePrefix("10.0.0.0/8"), []StaticOrigin{{Speaker: 99}})
}

func TestExportViewNilCases(t *testing.T) {
	net := NewNetwork()
	net.AddSpeaker(1, 100, "a")
	net.AddSpeaker(2, 200, "b")
	net.Connect(1, 2, bgp2custCfg(), bgp2provCfg())
	p := netutil.MustParsePrefix("10.0.0.0/8")
	res := net.SolveStatic(p, []StaticOrigin{{Speaker: 2}})
	if v := net.ExportView(res, 99, 1); v != nil {
		t.Error("unknown speaker should yield nil view")
	}
	if v := net.ExportView(res, 1, 99); v != nil {
		t.Error("unknown target should yield nil view")
	}
	if v := net.ExportView(res, 2, 1); v == nil || v.Path.Origin() != 200 {
		t.Errorf("ExportView = %v, want origin 200", v)
	}
}

func TestSolverDetectsDispute(t *testing.T) {
	// A classic dispute wheel: three ASes each prefer the route via
	// their clockwise neighbor over the direct route (encoded with
	// localpref on peer sessions). The solver must hit the round cap
	// and report non-convergence rather than hang.
	net := NewNetwork()
	net.AddSpeaker(1, 101, "a")
	net.AddSpeaker(2, 102, "b")
	net.AddSpeaker(3, 103, "c")
	net.AddSpeaker(4, 104, "origin")
	all := NewClassSet(ClassOwn, ClassCustomer, ClassPeer, ClassProvider, ClassREPeer)
	mk := func(lp uint32) PeerConfig {
		return PeerConfig{ClassifyAs: ClassPeer, ImportLocalPref: lp, ExportAllow: all}
	}
	// Each wheel AS prefers the clockwise neighbor (lp 300) over the
	// origin (lp 100).
	net.Connect(1, 2, mk(300), mk(100)) // 1 prefers via 2; 2 dislikes via 1
	net.Connect(2, 3, mk(300), mk(100))
	net.Connect(3, 1, mk(300), mk(100))
	net.Connect(4, 1, mk(100), mk(200))
	net.Connect(4, 2, mk(100), mk(200))
	net.Connect(4, 3, mk(100), mk(200))
	p := netutil.MustParsePrefix("198.51.100.0/24")
	res := net.SolveStatic(p, []StaticOrigin{{Speaker: 4}})
	if res.Converged {
		// Some parameterizations of the wheel do stabilize; accept
		// either outcome but require the solver to terminate with a
		// bounded round count.
		t.Logf("wheel stabilized in %d rounds", res.Rounds)
	}
	if res.Rounds > maxStaticRounds {
		t.Fatalf("solver exceeded its round cap: %d", res.Rounds)
	}
}
