package bgp

import (
	"strings"
	"testing"

	"repro/internal/asn"
	"repro/internal/netutil"
)

func TestOriginString(t *testing.T) {
	tests := map[Origin]string{
		OriginIGP:        "IGP",
		OriginEGP:        "EGP",
		OriginIncomplete: "Incomplete",
	}
	for o, want := range tests {
		if got := o.String(); got != want {
			t.Errorf("Origin(%d).String() = %q, want %q", o, got, want)
		}
	}
	if RouteClass(200).String() == "" {
		t.Error("unknown class should render something")
	}
}

func TestRouteString(t *testing.T) {
	var nilRoute *Route
	if nilRoute.String() != "<nil route>" {
		t.Errorf("nil route string = %q", nilRoute.String())
	}
	r := &Route{
		Prefix:    netutil.MustParsePrefix("163.253.63.0/24"),
		Path:      asn.MustParsePath("3754 11537"),
		LocalPref: 120,
		Class:     ClassProvider,
		From:      7,
		LearnedAt: 42,
	}
	out := r.String()
	for _, want := range []string{"163.253.63.0/24", "3754 11537", "lp=120", "provider", "from=7", "age@42"} {
		if !strings.Contains(out, want) {
			t.Errorf("Route.String() missing %q: %s", want, out)
		}
	}
}

func TestRouteClone(t *testing.T) {
	r := &Route{LocalPref: 5, Path: asn.Path{1, 2}}
	c := r.clone()
	c.LocalPref = 9
	if r.LocalPref != 5 {
		t.Error("clone shares scalar fields")
	}
	// Paths are shared deliberately (immutable).
	if &r.Path[0] != &c.Path[0] {
		t.Error("clone should share path storage")
	}
}

func TestSpeakerByName(t *testing.T) {
	net := NewNetwork()
	net.AddSpeaker(1, 100, "alpha")
	net.AddSpeaker(2, 200, "") // anonymous speakers allowed
	if s := net.SpeakerByName("alpha"); s == nil || s.ID != 1 {
		t.Errorf("SpeakerByName(alpha) = %v", s)
	}
	if net.SpeakerByName("missing") != nil {
		t.Error("unknown name should be nil")
	}
}

func TestGaoRexfordTables(t *testing.T) {
	// Export: customers receive everything; peers/providers receive
	// own+customer; R&E peers additionally receive R&E peer routes.
	full := []RouteClass{ClassOwn, ClassCustomer, ClassPeer, ClassProvider, ClassREPeer}
	for _, c := range full {
		if !GaoRexfordExport(ClassCustomer).Has(c) {
			t.Errorf("customers should receive %v routes", c)
		}
	}
	for _, rel := range []RouteClass{ClassPeer, ClassProvider} {
		set := GaoRexfordExport(rel)
		if !set.Has(ClassOwn) || !set.Has(ClassCustomer) {
			t.Errorf("%v export should include own+customer", rel)
		}
		if set.Has(ClassPeer) || set.Has(ClassProvider) || set.Has(ClassREPeer) {
			t.Errorf("%v export leaks non-customer routes", rel)
		}
	}
	re := GaoRexfordExport(ClassREPeer)
	if !re.Has(ClassREPeer) {
		t.Error("R&E peers should receive R&E peer routes (the fabric extension)")
	}
	if re.Has(ClassProvider) {
		t.Error("R&E peers must not receive provider routes")
	}
	if GaoRexfordExport(ClassOwn).Has(ClassOwn) {
		t.Error("no export set for the own pseudo-relationship")
	}

	// LocalPref ordering: customer > peer > R&E peer > provider.
	lps := []uint32{
		GaoRexfordLocalPref(ClassCustomer),
		GaoRexfordLocalPref(ClassPeer),
		GaoRexfordLocalPref(ClassREPeer),
		GaoRexfordLocalPref(ClassProvider),
	}
	for i := 1; i < len(lps); i++ {
		if lps[i] >= lps[i-1] {
			t.Errorf("localpref tier %d (%d) not below tier %d (%d)", i, lps[i], i-1, lps[i-1])
		}
	}
	if GaoRexfordLocalPref(ClassOwn) != DefaultLocalPref {
		t.Error("fallback localpref wrong")
	}
}

func TestSpeakerAccessors(t *testing.T) {
	net := chainNet()
	p := netutil.MustParsePrefix("203.0.113.0/24")
	net.Originate(1, p)
	net.RunToQuiescence()
	mid := net.Speaker(2)
	peers := mid.Peers()
	if len(peers) != 2 || peers[0] != 1 || peers[1] != 3 {
		t.Errorf("Peers = %v, want [1 3]", peers)
	}
	// AdjOut toward the edge holds the prepended announcement.
	out := mid.AdjOut(p, 3)
	if out == nil || !out.Path.Equal(asn.MustParsePath("200 100")) {
		t.Errorf("AdjOut = %v", out)
	}
	if mid.AdjOut(p, 99) != nil {
		t.Error("AdjOut to unknown neighbor should be nil")
	}
}

func TestNextHopLPMAndForwardPathLPM(t *testing.T) {
	net := chainNet()
	def := DefaultPrefix
	specific := netutil.MustParsePrefix("203.0.113.0/24")
	other := netutil.MustParsePrefix("198.51.100.0/24")
	// origin(1) announces a default; middle(2) announces the specific.
	net.Originate(1, def)
	net.Originate(2, specific)
	net.RunToQuiescence()

	edge := RouterID(3)
	// Specific wins where present.
	if next, ok := net.NextHopLPM(edge, specific); !ok || next != 2 {
		t.Errorf("NextHopLPM(specific) = %d,%v", next, ok)
	}
	// Unknown prefix falls back to the default (via middle toward origin).
	if next, ok := net.NextHopLPM(edge, other); !ok || next != 2 {
		t.Errorf("NextHopLPM(other) = %d,%v", next, ok)
	}
	path, ok := net.ForwardPathLPM(edge, other)
	if !ok || path[len(path)-1] != 1 {
		t.Errorf("ForwardPathLPM(other) = %v,%v; want termination at the default origin", path, ok)
	}
	// Without LPM, the unknown prefix is unroutable.
	if _, ok := net.ForwardPath(edge, other); ok {
		t.Error("plain ForwardPath should fail without a specific route")
	}
}
