package bgp

// Incremental recomputation. The experiments perturb exactly one
// attribute of one prefix's announcements per configuration step, yet
// the baseline engine reran the full decision process (a scan over
// every candidate) at every delivery. This file adds the delta path:
//
//   - Config setters (SetExportPrepend, SetPrefixPrepend) and session
//     flaps feed a per-router dirty-set keyed by (prefix, neighbor);
//     a work-queue drain re-exports only dirty pairs, and the adj-out
//     comparison in sendExport enqueues neighbors only when the
//     announcement actually changed.
//   - Deliveries run an O(1) single-candidate decision update instead
//     of a full scan whenever the fast path is provably equivalent,
//     falling back to a full scan (with a memoized decision cache)
//     otherwise.
//
// Equivalence contract: with SetIncremental(true) the network produces
// byte-identical observable output — the same messages at the same
// virtual times, the same churn records, the same RIBs — as the full
// path. Only the work-accounting counters (bgp_decision_full_scans,
// bgp_inc_*) may differ between modes; bgp_decision_runs_total and
// bgp_best_path_changes_total are kept 1:1 by construction.
//
// Fast-path soundness. Without MED the decision process is a strict
// total order over candidates with distinct From (Compare returns 0
// only for equal From), so a single-candidate change resolves with one
// comparison against the incumbent best unless the best itself
// degraded or was removed. MED breaks transitivity (see
// TestCompareTransitiveWithoutMED), so the fast path is gated on a
// sticky per-(speaker, prefix) medSeen flag: once any nonzero-MED
// route is seen for a prefix, that prefix full-scans forever.
//
// One pointer subtlety: the loc-RIB may hold a stale-but-semantically-
// equal pointer for the origination slot (runDecision keeps the old
// route on a routesEqual re-announcement), so slot identity uses
// Route.From, never pointer comparison. The stale copy can differ only
// in LearnedAt, and ByAge can never decide between an origination and
// an import (ByEBGP always separates them first) nor between two
// imports with stale ages (duplicate announcements are dropped before
// install), so comparing against the stale pointer is exact.

import (
	"repro/internal/netutil"
)

// IncStats counts decision-process work. The plain fields are always
// maintained (both modes, telemetry on or off) so benchmarks and the
// equivalence tests can meter work without a registry.
type IncStats struct {
	// DecisionRuns counts decision-process invocations; identical in
	// full and incremental mode by construction.
	DecisionRuns int64
	// BestChanges counts loc-RIB changes; identical in both modes.
	BestChanges int64
	// FullScans counts full best-path scans over the candidate set —
	// the "decision-process evaluations" the incremental path exists
	// to avoid. Full mode scans on every run.
	FullScans int64
	// FastPath counts single-comparison incremental decisions.
	FastPath int64
	// CacheHits counts full scans answered by the memoized decision
	// cache (candidate pointer set unchanged since last scan).
	CacheHits int64
	// NoopDecisions counts incremental runs whose effective candidate
	// was semantically unchanged, skipping even the one comparison.
	NoopDecisions int64
	// DirtyPairs counts distinct (router, prefix, neighbor) pairs
	// enqueued by config setters and session flaps.
	DirtyPairs int64
	// DirtyEvals counts dirty-pair export evaluations drained from the
	// work queue.
	DirtyEvals int64
	// SuppressedProps counts drained dirty pairs whose export was
	// unchanged, so no update (or timer) was enqueued — propagation
	// suppressed at the source.
	SuppressedProps int64
}

// dirtyKey identifies one pending re-export: router s toward neighbor,
// for one prefix.
type dirtyKey struct {
	router   RouterID
	prefix   netutil.Prefix
	neighbor RouterID
}

// decCacheEntry memoizes one full scan: the exact candidate pointers
// scanned and the best they produced. Routes are immutable once
// installed, so pointer-set equality proves the cached choice is
// current (flap cycles re-produce earlier candidate sets and hit).
type decCacheEntry struct {
	cands []*Route
	best  *Route
}

// SetIncremental switches the engine between full reconvergence (the
// reference path) and incremental recomputation. Both modes produce
// identical observable output; see the file comment for the contract.
// Switching mid-life is safe: the gate state (medSeen, decision cache)
// is maintained in both modes.
func (n *Network) SetIncremental(on bool) {
	if !on {
		// Never strand queued work across a mode switch.
		n.drainDirty()
	}
	n.incremental = on
}

// Incremental reports whether the incremental path is active.
func (n *Network) Incremental() bool { return n.incremental }

// Stats returns the decision-work counters accumulated so far.
func (n *Network) Stats() IncStats { return n.inc }

// Batch runs f with dirty-pair draining deferred to the end, so a
// multi-setter configuration delta (the experiment's per-config
// prepend updates) collapses duplicate (router, prefix, neighbor)
// touches into one evaluation. Outside incremental mode f just runs.
// Batches nest; the drain happens when the outermost batch ends.
func (n *Network) Batch(f func()) {
	n.batchDepth++
	defer func() {
		n.batchDepth--
		if n.batchDepth == 0 {
			n.drainDirty()
		}
	}()
	f()
}

// requestExport is the config-delta entry point: immediate export in
// full mode, dirty-set enqueue (drained now, or at batch end) in
// incremental mode.
func (n *Network) requestExport(s *Speaker, p netutil.Prefix, pc *PeerConfig) {
	if !n.incremental {
		n.exportToPeer(s, p, pc)
		return
	}
	k := dirtyKey{s.ID, p, pc.Neighbor}
	if !n.dirtySet[k] {
		if n.dirtySet == nil {
			n.dirtySet = make(map[dirtyKey]bool)
		}
		n.dirtySet[k] = true
		n.dirtyQueue = append(n.dirtyQueue, k)
		n.inc.DirtyPairs++
		n.metrics.incDirtyPairs.Inc()
	}
	if n.batchDepth == 0 {
		n.drainDirty()
	}
}

// drainDirty evaluates every queued dirty pair in enqueue order (the
// setters run in deterministic order, so the drain is deterministic).
// exportToPeer never re-enqueues, so one pass empties the queue.
func (n *Network) drainDirty() {
	for i := 0; i < len(n.dirtyQueue); i++ {
		k := n.dirtyQueue[i]
		delete(n.dirtySet, k)
		s := n.speakers[k.router]
		if s == nil {
			continue
		}
		pc := s.peers[k.neighbor]
		if pc == nil {
			continue
		}
		n.inc.DirtyEvals++
		n.metrics.incDirtyEvals.Inc()
		seqBefore := n.queue.Seq()
		n.exportToPeer(s, k.prefix, pc)
		if n.queue.Seq() == seqBefore {
			// Nothing entered the event queue: the recomputed
			// announcement matched the adj-RIB-out, so no neighbor is
			// enqueued.
			n.inc.SuppressedProps++
			n.metrics.incSuppressed.Inc()
		}
	}
	n.dirtyQueue = n.dirtyQueue[:0]
}

// decide routes a single-candidate change (slot `from`; 0 = the
// origination) through the incremental decision process. before/after
// are the slot's effective candidate (nil when absent or suppressed)
// around the change. Callers in full mode use decideAndExport instead.
func (n *Network) decide(s *Speaker, p netutil.Prefix, from RouterID, before, after *Route) {
	n.metrics.decisionRuns.Inc()
	n.inc.DecisionRuns++
	if routesEqual(before, after) {
		// The effective candidate is semantically unchanged (damped
		// flap, equal re-origination): the selection cannot move. A
		// full scan would conclude changed=false, so mirror its
		// VRF-session export check and stop.
		n.inc.NoopDecisions++
		n.metrics.incNoop.Inc()
		n.exportAfterDecision(s, p, false)
		return
	}
	_, changed := n.incrementalBest(s, p, from, after)
	if changed {
		n.metrics.bestChanges.Inc()
		n.inc.BestChanges++
	}
	n.exportAfterDecision(s, p, changed)
}

// incrementalBest updates the loc-RIB for a single-slot change with
// one comparison when sound, a full scan otherwise. It mirrors
// runDecision's change-detection semantics exactly (semantic equality
// keeps the previous pointer).
func (n *Network) incrementalBest(s *Speaker, p netutil.Prefix, from RouterID, after *Route) (*Route, bool) {
	prev := s.locRib.Get(locKey(p))
	if !s.medSeen[p] {
		switch {
		case after == nil:
			if prev == nil || prev.From != from {
				// A non-best candidate disappeared; the best stands.
				n.fastPathHit()
				return prev, false
			}
			// The best itself disappeared: only a scan finds the
			// runner-up.
		case prev == nil:
			// First candidate wins unopposed.
			n.fastPathHit()
			s.locRib.Install(locKey(p), after)
			return after, true
		case prev.From == from:
			// The best route's own slot changed. If the replacement
			// still beats the old best it beats every other candidate
			// (prev was verified against all of them, and the order is
			// transitive without MED).
			if c, _ := Compare(after, prev); c <= 0 {
				n.fastPathHit()
				if routesEqual(prev, after) {
					return prev, false
				}
				s.locRib.Install(locKey(p), after)
				return after, true
			}
			// The slot degraded below the old best: scan.
		default:
			// A challenger slot changed. One comparison against the
			// incumbent decides: the incumbent already beats every
			// other candidate.
			c, _ := Compare(after, prev)
			if c < 0 {
				n.fastPathHit()
				s.locRib.Install(locKey(p), after)
				return after, true
			}
			if c > 0 {
				n.fastPathHit()
				return prev, false
			}
			// c == 0 is impossible for distinct From; scan defensively.
		}
	}
	return n.scanDecision(s, p)
}

func (n *Network) fastPathHit() {
	n.inc.FastPath++
	n.metrics.incFastPath.Inc()
}

// scanDecision is the incremental path's full scan: runDecision
// semantics plus the memoized decision cache. The cache key is the
// exact candidate pointer slice; routes are immutable once installed,
// so pointer equality proves the memo is current.
func (n *Network) scanDecision(s *Speaker, p netutil.Prefix) (*Route, bool) {
	cands := s.candidateSet(p)
	var best *Route
	if e, ok := s.decCache[p]; ok && samePointers(e.cands, cands) {
		best = e.best
		n.inc.CacheHits++
		n.metrics.incCacheHits.Inc()
	} else {
		best, _ = Best(cands)
		if s.decCache == nil {
			s.decCache = make(map[netutil.Prefix]decCacheEntry)
		}
		s.decCache[p] = decCacheEntry{cands: cands, best: best}
		n.inc.FullScans++
		n.metrics.fullScans.Inc()
	}
	prev := s.locRib.Get(locKey(p))
	if routesEqual(prev, best) {
		return prev, false
	}
	if best == nil {
		s.locRib.Withdraw(locKey(p))
	} else {
		s.locRib.Install(locKey(p), best)
	}
	return best, true
}

func samePointers(a, b []*Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
