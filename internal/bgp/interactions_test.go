package bgp

import (
	"testing"

	"repro/internal/netutil"
)

// Cross-feature interaction tests: MRAI with RFD, communities through
// chains, and engine idempotence.

func TestEngineIdempotentQuiescence(t *testing.T) {
	net := diamondNet()
	net.Originate(1, diamondPrefix)
	net.RunToQuiescence()
	n := net.EventsProcessed()
	net.RunToQuiescence()
	net.RunToQuiescence()
	if net.EventsProcessed() != n {
		t.Error("quiescent network generated events")
	}
}

func TestMRAIWithRFD(t *testing.T) {
	// MRAI batching upstream reduces the flap count a damped
	// downstream session sees: with batching, rapid origin flaps reach
	// the damped session as fewer updates and may never suppress.
	build := func(mrai Time) (*Network, netutil.Prefix) {
		net := chainNet()
		net.Speaker(2).Peer(3).MRAI = mrai
		net.Speaker(3).Peer(2).RFD = DefaultRFD()
		p := netutil.MustParsePrefix("203.0.113.0/24")
		net.Originate(1, p)
		net.RunToQuiescence()
		// Rapid attribute flaps at the origin.
		for i := 1; i <= 5; i++ {
			net.SetPrefixPrepend(1, 2, p, i%2+1)
			net.Run(net.Now() + 3)
		}
		return net, p
	}

	noBatch, p := build(0)
	batched, _ := build(60)
	// Without batching, the edge's session should have been suppressed
	// at some point (five flaps in ~15s); with a 60s MRAI the edge
	// sees at most one update in that window.
	nbEdge := noBatch.Speaker(3)
	bEdge := batched.Speaker(3)
	_ = nbEdge
	// After full drain both converge to the same final route.
	noBatch.RunToQuiescence()
	batched.RunToQuiescence()
	rn, rb := noBatch.Speaker(3).Best(p), bEdge.Best(p)
	if rn == nil || rb == nil || !rn.Path.Equal(rb.Path) {
		t.Errorf("final states differ: %v vs %v", rn, rb)
	}
}

func TestCommunityThroughChainWithPrepends(t *testing.T) {
	net := chainNet()
	p := netutil.MustParsePrefix("203.0.113.0/24")
	tag := MakeCommunity(100, 1)
	net.OriginateWith(1, p, OriginateOpts{Communities: NewCommunitySet(tag)})
	net.RunToQuiescence()
	net.SetPrefixPrepend(1, 2, p, 2)
	net.RunToQuiescence()
	r := net.Speaker(3).Best(p)
	if r == nil || !r.Communities.Has(tag) {
		t.Fatalf("community lost across prepend change: %v", r)
	}
	if r.Path.PrependCount() != 2 {
		t.Errorf("prepends = %d, want 2", r.Path.PrependCount())
	}
}

func TestSessionDownDuringMRAIWindow(t *testing.T) {
	// A deferred (MRAI-held) export must not fire onto a session that
	// went down before the flush.
	net := chainNet()
	net.Speaker(2).Peer(3).MRAI = 50
	p := netutil.MustParsePrefix("203.0.113.0/24")
	net.Originate(1, p)
	net.RunToQuiescence()
	// Change within the MRAI window, then cut the session.
	net.SetPrefixPrepend(1, 2, p, 1)
	net.Run(net.Now() + 2)
	net.SetSessionDown(2, 3)
	net.RunToQuiescence()
	if net.Speaker(3).AdjIn(p, 2) != nil {
		t.Error("down session received the deferred update")
	}
	// Restore: state resynchronizes.
	net.SetSessionUp(2, 3)
	net.RunToQuiescence()
	r := net.Speaker(3).Best(p)
	if r == nil || r.Path.PrependCount() != 1 {
		t.Errorf("post-restore route wrong: %v", r)
	}
}

func TestConnectInitialTableExchange(t *testing.T) {
	// RFC 4271 §9.2: a new session carries existing state both ways.
	net := NewNetwork()
	net.AddSpeaker(1, 100, "a")
	net.AddSpeaker(2, 200, "b")
	pa := netutil.MustParsePrefix("10.1.0.0/16")
	pb := netutil.MustParsePrefix("10.2.0.0/16")
	net.Originate(1, pa)
	net.Originate(2, pb)
	net.RunToQuiescence()
	// Connect after both originations.
	peerCfg := PeerConfig{ClassifyAs: ClassPeer, ImportLocalPref: LocalPrefPeer, ExportAllow: GaoRexfordExport(ClassPeer)}
	net.Connect(1, 2, peerCfg, peerCfg)
	net.RunToQuiescence()
	if net.Speaker(2).Best(pa) == nil {
		t.Error("b did not learn a's pre-existing route")
	}
	if net.Speaker(1).Best(pb) == nil {
		t.Error("a did not learn b's pre-existing route")
	}
}
