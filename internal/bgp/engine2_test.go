package bgp

import (
	"testing"

	"repro/internal/asn"
	"repro/internal/netutil"
)

// diamondNet: origin(1) -> {left(2), right(3)} -> sink(4).
func diamondNet() *Network {
	net := NewNetwork()
	net.AddSpeaker(1, 100, "origin")
	net.AddSpeaker(2, 200, "left")
	net.AddSpeaker(3, 300, "right")
	net.AddSpeaker(4, 400, "sink")
	cust := bgp2custCfg()
	prov := bgp2provCfg()
	net.Connect(2, 1, cust, prov)
	net.Connect(3, 1, cust, prov)
	net.Connect(4, 2, cust, prov)
	net.Connect(4, 3, cust, prov)
	return net
}

var diamondPrefix = netutil.MustParsePrefix("198.51.100.0/24")

func TestSetPrefixPrependAffectsOnlyThatPrefix(t *testing.T) {
	net := diamondNet()
	p2 := netutil.MustParsePrefix("198.51.101.0/24")
	net.Originate(1, diamondPrefix)
	net.Originate(1, p2)
	net.RunToQuiescence()

	net.SetPrefixPrepend(1, 2, diamondPrefix, 3)
	net.RunToQuiescence()
	left := net.Speaker(2)
	if got := left.AdjIn(diamondPrefix, 1).Path.Len(); got != 4 {
		t.Errorf("prepended prefix path len = %d, want 4", got)
	}
	if got := left.AdjIn(p2, 1).Path.Len(); got != 1 {
		t.Errorf("other prefix path len = %d, want 1 (untouched)", got)
	}
	// Idempotent re-set generates nothing.
	ev := net.EventsProcessed()
	net.SetPrefixPrepend(1, 2, diamondPrefix, 3)
	net.RunToQuiescence()
	if net.EventsProcessed() != ev {
		t.Error("idempotent SetPrefixPrepend generated events")
	}
	// Unknown speaker / session are no-ops.
	net.SetPrefixPrepend(99, 2, diamondPrefix, 1)
	net.SetPrefixPrepend(1, 99, diamondPrefix, 1)
}

func TestExportFilterScopesPrefix(t *testing.T) {
	net := diamondNet()
	meas := diamondPrefix
	// origin withholds meas from right(3) only.
	net.Speaker(1).Peer(3).ExportFilter = func(r *Route) bool { return r.Prefix != meas }
	other := netutil.MustParsePrefix("198.51.101.0/24")
	net.Originate(1, meas)
	net.Originate(1, other)
	net.RunToQuiescence()

	if net.Speaker(3).AdjIn(meas, 1) != nil {
		t.Error("filtered prefix leaked to right")
	}
	if net.Speaker(3).AdjIn(other, 1) == nil {
		t.Error("unfiltered prefix missing at right")
	}
	// Sink still reaches meas via left.
	if best := net.Speaker(4).Best(meas); best == nil || best.From != 2 {
		t.Errorf("sink best = %v, want via left", best)
	}
}

func TestVRFSplitExport(t *testing.T) {
	// sink(4) holds routes via left and right; a collector session at
	// sink exports best-of-right only, even though sink's loc-RIB best
	// is via left (lower router ID on the tie).
	net := diamondNet()
	col := net.AddSpeaker(9, 900, "collector")
	col.Collector = true
	exportAll := NewClassSet(ClassOwn, ClassCustomer, ClassPeer, ClassProvider, ClassREPeer)
	net.Connect(4, 9,
		PeerConfig{
			ClassifyAs:  ClassPeer,
			ExportAllow: exportAll,
			ExportBestOf: func(r *Route) bool {
				return r.From == 3 // the "commodity VRF"
			},
		},
		PeerConfig{ClassifyAs: ClassPeer, ExportAllow: NewClassSet()})
	net.Originate(1, diamondPrefix)
	net.RunToQuiescence()

	sink := net.Speaker(4)
	if best := sink.Best(diamondPrefix); best == nil || best.From != 2 {
		t.Fatalf("sink best = %v, want via left (router-id tie)", best)
	}
	got := col.AdjIn(diamondPrefix, 4)
	if got == nil {
		t.Fatal("collector saw nothing")
	}
	// The collector's view came through right: path "400 300 100".
	want := asn.MustParsePath("400 300 100")
	if !got.Path.Equal(want) {
		t.Errorf("collector path = %v, want %v (the VRF view)", got.Path, want)
	}
}

func TestSessionDownReroutesAndUpRestores(t *testing.T) {
	net := diamondNet()
	net.Originate(1, diamondPrefix)
	net.RunToQuiescence()
	sink := net.Speaker(4)
	if best := sink.Best(diamondPrefix); best == nil || best.From != 2 {
		t.Fatalf("initial best = %v, want via left", best)
	}

	net.SetSessionDown(4, 2)
	net.RunToQuiescence()
	if best := sink.Best(diamondPrefix); best == nil || best.From != 3 {
		t.Fatalf("after outage best = %v, want via right", best)
	}
	if sink.AdjIn(diamondPrefix, 2) != nil {
		t.Error("down session still holds a route")
	}

	// Double-down is a no-op; unknown sessions are no-ops.
	net.SetSessionDown(4, 2)
	net.SetSessionDown(4, 99)
	net.SetSessionUp(4, 99)

	net.SetSessionUp(4, 2)
	net.RunToQuiescence()
	best := sink.Best(diamondPrefix)
	if best == nil {
		t.Fatal("no route after restore")
	}
	if sink.AdjIn(diamondPrefix, 2) == nil {
		t.Error("restored session did not re-learn the route")
	}
	// The pre-outage route via right is now older; age keeps it best.
	if best.From != 3 {
		t.Errorf("after restore best = %v; the surviving (older) route should win", best)
	}
}

func TestSessionDownWhileUpdateInFlight(t *testing.T) {
	// An announcement already queued on a session that goes down must
	// be dropped, not applied after the teardown.
	net := diamondNet()
	net.Originate(1, diamondPrefix)
	// Deliberately do NOT converge: updates to 2 and 3 are in flight.
	net.SetSessionDown(2, 1)
	net.RunToQuiescence()
	if net.Speaker(2).AdjIn(diamondPrefix, 1) != nil {
		t.Error("in-flight update applied on a down session")
	}
	// Traffic still flows via right.
	if best := net.Speaker(4).Best(diamondPrefix); best == nil || best.From != 3 {
		t.Errorf("sink best = %v, want via right", best)
	}
}

func TestImportDeny(t *testing.T) {
	net := diamondNet()
	// sink denies routes via left whose path contains AS 200.
	net.Speaker(4).Peer(2).ImportDeny = func(r *Route) bool {
		return r.Path.Contains(200)
	}
	net.Originate(1, diamondPrefix)
	net.RunToQuiescence()
	sink := net.Speaker(4)
	if sink.AdjIn(diamondPrefix, 2) != nil {
		t.Error("denied route installed")
	}
	if best := sink.Best(diamondPrefix); best == nil || best.From != 3 {
		t.Errorf("best = %v, want via right", best)
	}
}

func TestWithdrawOriginationUnknowns(t *testing.T) {
	net := diamondNet()
	// Withdrawing a never-announced prefix or at an unknown speaker is
	// a no-op.
	net.WithdrawOrigination(1, diamondPrefix)
	net.WithdrawOrigination(99, diamondPrefix)
	if net.EventsProcessed() != 0 {
		t.Error("no-op withdraw generated events")
	}
}

func TestChurnTotalsCount(t *testing.T) {
	net := diamondNet()
	net.Originate(1, diamondPrefix)
	net.RunToQuiescence()
	if net.Churn.TotalMessages == 0 {
		t.Error("no messages counted")
	}
	if len(net.Churn.Records) != 0 {
		t.Error("records without any collector")
	}
}

func TestRunUntilBoundary(t *testing.T) {
	net := diamondNet()
	net.Originate(1, diamondPrefix)
	// Run only to time 1: with jittered per-session delays >= 1 the
	// first wave may arrive, but distant speakers cannot have heard.
	net.Run(1)
	if net.Speaker(4).Best(diamondPrefix) != nil {
		t.Error("sink converged implausibly fast")
	}
	net.RunToQuiescence()
	if net.Speaker(4).Best(diamondPrefix) == nil {
		t.Error("sink missing route after full run")
	}
}
