// Package bgp implements the BGP policy machinery the reproduction
// needs: route attributes, the standard decision process, per-neighbor
// import/export policy (localpref assignment, Gao-Rexford export
// classes, prepending), adj-RIB-in / loc-RIB bookkeeping, route-flap
// damping (RFC 2439), an event-driven propagation engine with update
// churn accounting (used for the measurement prefix, where dynamics
// such as route age matter), and a fixpoint solver (used for the bulk
// member prefixes, where only converged state matters).
package bgp

import (
	"fmt"

	"repro/internal/asn"
	"repro/internal/netutil"
)

// Time is virtual time in seconds since the experiment epoch.
type Time int64

// Clock formats a virtual time as HH:MM:SS relative to the epoch,
// matching how Figure 3 labels its x-axis.
func (t Time) Clock() string {
	s := int64(t)
	neg := ""
	if s < 0 {
		neg, s = "-", -s
	}
	return fmt.Sprintf("%s%02d:%02d:%02d", neg, s/3600, (s/60)%60, s%60)
}

// RouterID identifies a BGP speaker. IDs are assigned by the topology
// builder and are unique across the simulated internetwork.
type RouterID uint32

// Origin is the BGP ORIGIN attribute; lower is preferred.
type Origin uint8

// Origin values in decision-process preference order.
const (
	OriginIGP Origin = iota
	OriginEGP
	OriginIncomplete
)

func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "IGP"
	case OriginEGP:
		return "EGP"
	default:
		return "Incomplete"
	}
}

// RouteClass records, at import time, the business relationship of the
// neighbor a route was learned from. Export policies are expressed as
// sets of classes (the Gao-Rexford rules plus the R&E extension where
// backbones re-export peer-NREN routes to other peer NRENs).
type RouteClass uint8

// Route classes.
const (
	// ClassOwn marks locally originated routes.
	ClassOwn RouteClass = iota
	// ClassCustomer marks routes learned from a customer.
	ClassCustomer
	// ClassPeer marks routes learned from a settlement-free peer.
	ClassPeer
	// ClassProvider marks routes learned from a transit provider.
	ClassProvider
	// ClassREPeer marks routes learned from a peer R&E network
	// (Internet2's "Peer-NREN" neighbor class). R&E backbones
	// re-export these to other R&E peers to build the global R&E
	// fabric, unlike ordinary peer routes.
	ClassREPeer
	numRouteClasses
)

func (c RouteClass) String() string {
	switch c {
	case ClassOwn:
		return "own"
	case ClassCustomer:
		return "customer"
	case ClassPeer:
		return "peer"
	case ClassProvider:
		return "provider"
	case ClassREPeer:
		return "re-peer"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// ClassSet is a small set of RouteClasses, used by export policies.
type ClassSet uint8

// NewClassSet builds a set from the given classes.
func NewClassSet(cs ...RouteClass) ClassSet {
	var s ClassSet
	for _, c := range cs {
		s |= 1 << c
	}
	return s
}

// Has reports whether c is in the set.
func (s ClassSet) Has(c RouteClass) bool { return s&(1<<c) != 0 }

// With returns the set plus c.
func (s ClassSet) With(c RouteClass) ClassSet { return s | 1<<c }

// Route is a BGP route as held in a speaker's Adj-RIB-In (or Loc-RIB).
// Routes are immutable once installed; the engine replaces rather than
// mutates them.
type Route struct {
	Prefix netutil.Prefix
	// Path is the AS path as received (the neighbor has already
	// prepended its own AS and any operator prepends).
	Path asn.Path
	// Origin is the ORIGIN attribute.
	Origin Origin
	// MED is the multi-exit discriminator; compared only between
	// routes from the same neighboring AS.
	MED uint32
	// LocalPref is assigned by the receiving speaker's import policy;
	// it is the attribute the paper infers.
	LocalPref uint32
	// Class is the import-time relationship classification.
	Class RouteClass
	// From is the neighbor speaker the route was learned from
	// (zero for locally originated routes).
	From RouterID
	// FromAS is the neighbor's AS (asn.None for local routes).
	FromAS asn.AS
	// EBGP reports whether the route was learned over an external
	// session. Locally originated routes are not EBGP.
	EBGP bool
	// IGPCost is the interior cost to the route's exit point.
	IGPCost uint32
	// LearnedAt is the virtual time the current version of this route
	// was received. A re-announcement (e.g. with changed prepending)
	// resets it; the decision process prefers older routes at the
	// route-age step (Appendix A of the paper).
	LearnedAt Time
	// Communities carries the route's community tags (RFC 1997).
	// Well-known values restrict propagation (NoExport, NoAdvertise).
	Communities CommunitySet
}

// DefaultLocalPref is the localpref a speaker assigns when the import
// policy does not override it. 100 matches common vendor defaults.
const DefaultLocalPref = 100

// String renders the route compactly for logs and tests.
func (r *Route) String() string {
	if r == nil {
		return "<nil route>"
	}
	return fmt.Sprintf("%s path=[%s] lp=%d class=%s from=%d age@%d",
		r.Prefix, r.Path, r.LocalPref, r.Class, r.From, r.LearnedAt)
}

// clone returns a shallow copy (Path is shared; paths are immutable).
func (r *Route) clone() *Route {
	c := *r
	return &c
}
