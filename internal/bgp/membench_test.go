package bgp

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/asn"
	"repro/internal/netutil"
)

// BenchmarkRIBBytesPerRoute measures the compact layout's memory model
// on a vantage-point shape: one speaker importing a 200K-prefix table
// from three feeds, with ~10 routes sharing each origin AS path (the
// interning workload a collector peer sees). The "bytes/route" metric
// is the modelled resident figure from RIBStats; BENCH_baseline.json
// records it and `make bench-mem` fails the build if it regresses.
func BenchmarkRIBBytesPerRoute(b *testing.B) {
	const (
		nPrefixes = 200_000
		nFeeds    = 3
	)
	for i := 0; i < b.N; i++ {
		n := NewNetwork()
		n.SetCompactRIB(true)
		const vantage = RouterID(1)
		n.AddSpeaker(vantage, asn.AS(65000), "vantage")
		feedExport := PeerConfig{
			ClassifyAs:  ClassPeer,
			ExportAllow: NewClassSet(ClassOwn, ClassCustomer),
		}
		vantageImport := PeerConfig{
			ClassifyAs:      ClassPeer,
			ImportLocalPref: LocalPrefPeer,
			ExportAllow:     NewClassSet(),
		}
		for f := 0; f < nFeeds; f++ {
			id := RouterID(2 + f)
			n.AddSpeaker(id, asn.AS(65001+f), "")
			n.Connect(id, vantage, feedExport, vantageImport)
		}
		// Dense /24 table; every 10th prefix starts a new origin, so
		// each origin's path is shared by ~10 routes per feed.
		chain := make([]asn.AS, 3)
		for f := 0; f < nFeeds; f++ {
			id := RouterID(2 + f)
			for p := 0; p < nPrefixes; p++ {
				origin := p / 10
				chain[0] = asn.AS(70_000 + f)
				chain[1] = asn.AS(80_000 + origin%500)
				chain[2] = asn.AS(100_000 + origin)
				n.OriginateWith(id, netutil.PrefixFrom(uint32(0x0A000000+p*256), 24),
					OriginateOpts{Poison: chain})
			}
		}
		n.RunToQuiescence()

		rs := n.RIBStats()
		var ms runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms)
		b.ReportMetric(rs.BytesPerRoute(), "bytes/route")
		b.ReportMetric(float64(rs.Routes), "routes")
		b.ReportMetric(float64(rs.DistinctPaths), "paths")
		b.ReportMetric(float64(ms.HeapAlloc)/(1<<20), "heap-MB")
		runtime.KeepAlive(n)
	}
}

// BenchmarkDeliveryAllocs measures steady-state allocations per
// delivered update on a converged compact network driven through
// prepend churn — the hot path of every workload. The
// "allocs/delivery" metric is gated against BENCH_baseline.json by
// `make bench-mem`.
func BenchmarkDeliveryAllocs(b *testing.B) {
	rng := rand.New(rand.NewSource(1789)) // #nosec benchmark randomness
	n := NewNetwork()
	n.SetCompactRIB(true)
	growGaoRexford(n, rng, 160)
	prefixes := make([]netutil.Prefix, 40)
	origins := make([]RouterID, len(prefixes))
	for i := range prefixes {
		prefixes[i] = netutil.PrefixFrom(uint32(0xC6336400+i*256), 24)
		origins[i] = RouterID(1 + rng.Intn(160))
		n.Originate(origins[i], prefixes[i])
	}
	n.RunToQuiescence()

	var before, after runtime.MemStats
	msgs0 := n.Churn.TotalMessages
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(prefixes)
		nb := n.speakers[origins[k]].peerOrder[0]
		n.SetPrefixPrepend(origins[k], nb, prefixes[k], 1+i%3)
		n.RunToQuiescence()
	}
	runtime.ReadMemStats(&after)
	delivered := n.Churn.TotalMessages - msgs0
	if delivered > 0 {
		b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(delivered), "allocs/delivery")
		b.ReportMetric(float64(delivered)/float64(b.N), "deliveries/op")
	}
}
