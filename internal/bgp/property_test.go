package bgp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asn"
	"repro/internal/netutil"
)

// Metamorphic properties of the decision process and the engine. These
// complement the differential harness in incremental_test.go: instead
// of checking incremental-vs-full agreement, they pin invariants both
// modes must satisfy.

// prepended returns a copy of r with k extra copies of its own head AS
// at the front — the shape every export-side prepend produces.
func prepended(r *Route, k int) *Route {
	c := *r
	head := asn.AS(0)
	if len(r.Path) > 0 {
		head = r.Path[0]
	}
	c.Path = r.Path.Prepend(head, k)
	return &c
}

// TestPropertyPrependMonotonic: at equal localpref, adding prepends to
// a route never makes it preferred over a route it did not already
// beat. Checked pairwise over random routes and then end-to-end on a
// diamond topology where one leg's prepending is swept upward.
func TestPropertyPrependMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(11)) // #nosec test randomness
	for i := 0; i < 5000; i++ {
		a, x := randomRoute(rng), randomRoute(rng)
		x.LocalPref = a.LocalPref // the property only claims equal-localpref monotonicity
		base, _ := Compare(a, x)
		for k := 1; k <= 3; k++ {
			got, _ := Compare(prepended(a, k), x)
			if got < base {
				t.Fatalf("prepending improved preference: Compare(a,x)=%d but Compare(a+%dprep,x)=%d\na=%s\nx=%s",
					base, k, got, routeSig(a), routeSig(x))
			}
			base = got // monotone in k too
		}
	}

	// End-to-end: speaker 1 hears 4's prefix via 2 and via 3; sweep
	// prepends on the 4→3 session upward. "Best is via 3" must be
	// monotonically non-increasing in the prepend count.
	p := netutil.MustParsePrefix("203.0.113.0/24")
	wasVia3 := true
	for k := 0; k <= 4; k++ {
		net := NewNetwork()
		for i := 1; i <= 4; i++ {
			net.AddSpeaker(RouterID(i), asn.AS(100+i), "")
		}
		cust := func(provider, c RouterID, prepend int) {
			net.Connect(provider, c,
				PeerConfig{ClassifyAs: ClassCustomer, ImportLocalPref: LocalPrefCustomer, ExportAllow: GaoRexfordExport(ClassCustomer)},
				PeerConfig{ClassifyAs: ClassProvider, ImportLocalPref: LocalPrefProvider, ExportAllow: GaoRexfordExport(ClassProvider), ExportPrepend: prepend})
		}
		cust(1, 2, 0)
		cust(1, 3, 0)
		cust(2, 4, 0)
		cust(3, 4, k)
		net.SetIncremental(k%2 == 1) // alternate modes: the property holds in both
		net.Originate(4, p)
		net.RunToQuiescence()
		via3 := net.Speaker(1).Best(p) != nil && net.Speaker(1).Best(p).From == 3
		if via3 && !wasVia3 {
			t.Fatalf("prepend sweep k=%d flipped the best path back toward the prepended leg", k)
		}
		wasVia3 = via3
	}
	if wasVia3 {
		t.Error("4 prepends on one leg of an otherwise symmetric diamond still won")
	}
}

// TestPropertyLocalPrefDominance: a strictly higher localpref wins no
// matter what the other attributes say — the paper's core routing
// policy assumption, checked over random attribute combinations.
func TestPropertyLocalPrefDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(13)) // #nosec test randomness
	for i := 0; i < 5000; i++ {
		hi, lo := randomRoute(rng), randomRoute(rng)
		hi.LocalPref = 100 + uint32(rng.Intn(5))*100
		lo.LocalPref = hi.LocalPref - uint32(1+rng.Intn(int(hi.LocalPref)-1))
		if c, step := Compare(hi, lo); c >= 0 || step != ByLocalPref {
			t.Fatalf("higher localpref did not dominate: Compare=%d step=%v\nhi=%s\nlo=%s",
				c, step, routeSig(hi), routeSig(lo))
		}
		// And through Best, in any position.
		cands := []*Route{lo, randomRoute(rng), hi}
		for _, c := range cands {
			if c != hi && c.LocalPref >= hi.LocalPref {
				c.LocalPref = lo.LocalPref
			}
		}
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		if best, _ := Best(cands); best.LocalPref != hi.LocalPref {
			t.Fatalf("Best picked localpref %d over available %d", best.LocalPref, hi.LocalPref)
		}
	}
}

// ribSignature is networkSignature minus message/churn/timing detail:
// just the semantic content of every RIB, with LearnedAt masked. This
// is the right notion of state for order-independence, where event
// interleaving (and hence install times) legitimately varies.
func ribSignature(n *Network) string {
	var b strings.Builder
	mask := func(r *Route) string {
		if r == nil {
			return "-"
		}
		c := *r
		c.LearnedAt = 0
		return routeSig(&c)
	}
	for _, id := range n.Speakers() {
		s := n.Speaker(id)
		fmt.Fprintf(&b, "speaker %d\n", id)
		s.locRib.WalkSorted(func(k ribKey, r *Route) bool {
			fmt.Fprintf(&b, "  best %s: %s\n", k.prefix, mask(r))
			return true
		})
		s.adjOut.WalkSorted(func(k ribKey, r *Route) bool {
			fmt.Fprintf(&b, "  out %s/%d: %s\n", k.prefix, k.neighbor, mask(r))
			return true
		})
	}
	return b.String()
}

// TestPropertyOrderIndependence: a batch of prepend updates touching
// pairwise-distinct prefixes commutes — any application order (and
// either engine mode) converges to the same RIB.
func TestPropertyOrderIndependence(t *testing.T) {
	type setOp struct {
		router, nb RouterID
		prefix     netutil.Prefix
		k          int
	}
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed * 104729)) // #nosec test randomness
		size := 8 + rng.Intn(15)
		prefixes := []netutil.Prefix{
			netutil.MustParsePrefix("203.0.113.0/24"),
			netutil.MustParsePrefix("198.51.100.0/24"),
			netutil.MustParsePrefix("192.0.2.0/24"),
			netutil.MustParsePrefix("100.64.0.0/24"),
		}
		origins := make([]RouterID, len(prefixes))
		for i := range prefixes {
			origins[i] = RouterID(1 + rng.Intn(size))
		}
		build := func(incremental bool) *Network {
			net := randomGaoRexfordNetwork(rand.New(rand.NewSource(seed)), size) // #nosec test randomness
			net.SetIncremental(incremental)
			for i, p := range prefixes {
				net.Originate(origins[i], p)
			}
			net.RunToQuiescence()
			return net
		}

		// One op per prefix — distinct prefixes is what makes the batch
		// commute (ops on one prefix do not commute with each other).
		template := build(false)
		var batch []setOp
		for _, p := range prefixes {
			id := template.Speakers()[rng.Intn(size)]
			peers := template.Speaker(id).Peers()
			if len(peers) == 0 {
				continue
			}
			batch = append(batch, setOp{router: id, nb: peers[rng.Intn(len(peers))], prefix: p, k: rng.Intn(4)})
		}

		apply := func(net *Network, order []int) string {
			for _, i := range order {
				op := batch[i]
				net.SetPrefixPrepend(op.router, op.nb, op.prefix, op.k)
			}
			net.RunToQuiescence()
			return ribSignature(net)
		}

		ref := make([]int, len(batch))
		for i := range ref {
			ref[i] = i
		}
		want := apply(build(false), ref)
		for trial := 0; trial < 4; trial++ {
			perm := append([]int(nil), ref...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			incremental := trial%2 == 0
			if got := apply(build(incremental), perm); got != want {
				t.Fatalf("seed %d: permutation %v (incremental=%v) converged differently:\n--- reference ---\n%s\n--- permuted ---\n%s",
					seed, perm, incremental, want, got)
			}
		}
	}
}

// TestPropertyDirtySetBounded: the dirty queue is a set — no key is
// ever resident twice — so queued work is bounded by live
// (router, prefix, neighbor) tuples regardless of how many times a
// batch touches them.
func TestPropertyDirtySetBounded(t *testing.T) {
	_, inc := incPair(3, 10)
	p := netutil.MustParsePrefix("203.0.113.0/24")
	inc.Originate(1, p)
	inc.RunToQuiescence()
	nb := inc.Speaker(1).Peers()[0]
	base := inc.Stats().DirtyPairs
	inc.Batch(func() {
		for i := 0; i < 50; i++ {
			inc.SetPrefixPrepend(1, nb, p, i%4)
		}
		if got := inc.Stats().DirtyPairs - base; got != 1 {
			t.Errorf("50 touches of one pair enqueued %d dirty pairs, want 1", got)
		}
		if len(inc.dirtyQueue) != len(inc.dirtySet) {
			t.Errorf("dirty queue (%d) and set (%d) disagree", len(inc.dirtyQueue), len(inc.dirtySet))
		}
	})
	inc.RunToQuiescence()
}
