package bgp

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/asn"
	"repro/internal/netutil"
)

// buildVantageArena builds a compact-RIB network with one vantage
// speaker importing nPrefixes routes from a single feed — enough
// entries per store to exercise the materialization-cache bound.
func buildVantageArena(nPrefixes int) (*Network, []netutil.Prefix) {
	n := NewNetwork()
	n.SetCompactRIB(true)
	const vantage, feed = RouterID(1), RouterID(2)
	n.AddSpeaker(vantage, asn.AS(65000), "vantage")
	n.AddSpeaker(feed, asn.AS(65001), "feed")
	n.Connect(feed, vantage,
		PeerConfig{ClassifyAs: ClassPeer, ExportAllow: NewClassSet(ClassOwn, ClassCustomer)},
		PeerConfig{ClassifyAs: ClassPeer, ImportLocalPref: LocalPrefPeer, ExportAllow: NewClassSet()})
	prefixes := make([]netutil.Prefix, nPrefixes)
	for p := 0; p < nPrefixes; p++ {
		prefixes[p] = netutil.PrefixFrom(uint32(0x0A000000+p*256), 24)
		n.OriginateWith(feed, prefixes[p],
			OriginateOpts{Poison: []asn.AS{asn.AS(70_000 + p/10)}})
	}
	n.RunToQuiescence()
	return n, prefixes
}

// TestMatCacheBoundedByWalks pins the fix for the arena Get
// materialization-cache leak: a full-table walk (every snapshot
// performs several) used to box the entire store into the per-key memo
// permanently; the bounded cache must keep the retained boxes at or
// under matCacheCap per store, while the snapshot itself — whose route
// index needs pointer identity across its two walks — still encodes
// and restores correctly.
func TestMatCacheBoundedByWalks(t *testing.T) {
	const nPrefixes = 3 * matCacheCap / 2
	n, prefixes := buildVantageArena(nPrefixes)

	// Point-Get storm over the loc-RIB: the cache must epoch-clear
	// instead of accumulating one box per prefix.
	for _, p := range prefixes {
		if n.Speaker(1).Best(p) == nil {
			t.Fatalf("vantage lost route for %v", p)
		}
	}
	if got := n.MatCacheEntries(); got > 3*2*matCacheCap {
		t.Fatalf("after a full point-Get pass: %d boxed routes retained, want <= %d", got, 3*2*matCacheCap)
	}

	// A snapshot walks every store (twice); after it, the unpin sweep
	// must have dropped any cache the pinned walks grew past the cap.
	var buf bytes.Buffer
	if err := n.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if got := n.MatCacheEntries(); got > 3*2*matCacheCap {
		t.Fatalf("after snapshot: %d boxed routes retained, want <= %d", got, 3*2*matCacheCap)
	}
	if got := n.MatCacheEntries(); got >= 2*nPrefixes {
		t.Fatalf("after snapshot: %d boxed routes retained — the whole table is boxed again (leak)", got)
	}

	// The snapshot taken under the bound must restore into an
	// identically built network and reproduce the table.
	base, _ := buildVantageArena(nPrefixes)
	if err := RestoreNetwork(bytes.NewReader(buf.Bytes()), base); err != nil {
		t.Fatalf("restore: %v", err)
	}
	for _, p := range []netutil.Prefix{prefixes[0], prefixes[nPrefixes/2], prefixes[nPrefixes-1]} {
		a, b := n.Speaker(1).Best(p), base.Speaker(1).Best(p)
		if !routesEqual(a, b) {
			t.Fatalf("restored best for %v: %v != %v", p, b, a)
		}
	}

	// Epoch clears must never change results: a second snapshot of the
	// same network is byte-identical to the first.
	var buf2 bytes.Buffer
	if err := n.Snapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("second snapshot differs from the first after cache epoch clears")
	}
}

// BenchmarkMatCacheBound reports how many boxed *Route entries the
// arena caches retain after a full-table snapshot walk. The
// "boxed/walk" metric is gated against BENCH_baseline.json by
// `make bench-mem`: reintroducing the unbounded memo multiplies it by
// the table size over the cap, tripping the gate.
func BenchmarkMatCacheBound(b *testing.B) {
	const nPrefixes = 3 * matCacheCap / 2
	n, _ := buildVantageArena(nPrefixes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Snapshot(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n.MatCacheEntries()), "boxed/walk")
	b.ReportMetric(float64(nPrefixes), "routes-walked")
}
