package bgp

import (
	"fmt"
	"sort"

	"repro/internal/asn"
	"repro/internal/netutil"
)

// StaticOrigin describes a prefix origination for the fixpoint solver.
type StaticOrigin struct {
	Speaker RouterID
}

// solverEdge caches one directed adjacency for the solver: everything
// needed to evaluate neighbor nb's export toward a speaker without
// map lookups.
type solverEdge struct {
	nbID   RouterID
	nb     *Speaker
	pcAtNb *PeerConfig // nb's policy toward the speaker (export side)
	pcAtS  *PeerConfig // the speaker's policy toward nb (import side)
}

// solverIndex is the RouterID-indexed adjacency cache. RouterIDs are
// dense (the topology builder assigns them sequentially), so slices
// beat maps by a wide margin in the solver's hot loop.
type solverIndex struct {
	maxID    RouterID
	speakers []*Speaker     // by RouterID
	adj      [][]solverEdge // by RouterID
}

// solverIdx returns the cached index, rebuilding it after topology
// changes (AddSpeaker/Connect mark it stale).
func (n *Network) solverIdx() *solverIndex {
	if n.solver != nil && !n.solverStale {
		return n.solver
	}
	var maxID RouterID
	for id := range n.speakers {
		if id > maxID {
			maxID = id
		}
	}
	idx := &solverIndex{
		maxID:    maxID,
		speakers: make([]*Speaker, maxID+1),
		adj:      make([][]solverEdge, maxID+1),
	}
	for id, s := range n.speakers {
		idx.speakers[id] = s
	}
	for id, s := range n.speakers {
		edges := make([]solverEdge, 0, len(s.peerOrder))
		for _, nbID := range s.peerOrder {
			nb := n.speakers[nbID]
			if nb == nil || nb.Collector {
				continue
			}
			pcAtNb := nb.peers[id]
			pcAtS := s.peers[nbID]
			if pcAtNb == nil || pcAtS == nil {
				continue
			}
			edges = append(edges, solverEdge{nbID: nbID, nb: nb, pcAtNb: pcAtNb, pcAtS: pcAtS})
		}
		idx.adj[id] = edges
	}
	n.solver = idx
	n.solverStale = false
	return idx
}

// StaticResult holds the converged best route per speaker for one
// solved prefix. Speakers with no route are absent from Best.
type StaticResult struct {
	Prefix netutil.Prefix
	Best   map[RouterID]*Route
	// Converged is false if the iteration cap was hit (a policy
	// dispute); the partial result is still returned.
	Converged bool
	// Rounds is the number of relaxation rounds performed.
	Rounds int
}

// maxStaticRounds caps relaxation rounds. Gao-Rexford-compliant
// policies converge in O(network diameter) rounds; the cap triggers
// only for genuinely unstable (dispute-wheel) configurations.
const maxStaticRounds = 200

// SolveStatic computes the converged routing for prefix p originated
// at the given speakers, without touching the event engine or any
// speaker RIB state. It reuses the same per-session import/export
// policies (localpref assignment, export classes, prepending,
// filters). Route age is not modelled (all LearnedAt zero), so age
// ties fall through to router ID — appropriate for the long-stable
// member-prefix announcements behind Table 4 and Figure 5.
//
// ExportBestOf (VRF-split) sessions are approximated by filtering the
// solver's per-speaker best; the reproduction attaches VRF splits only
// to collector sessions for the measurement prefix, which the event
// engine handles with full fidelity.
func (n *Network) SolveStatic(p netutil.Prefix, origins []StaticOrigin) *StaticResult {
	res := &StaticResult{Prefix: p}

	own := make(map[RouterID]*Route, len(origins))
	for _, o := range origins {
		if n.speakers[o.Speaker] == nil {
			panic(fmt.Sprintf("bgp: SolveStatic: unknown speaker %d", o.Speaker))
		}
		own[o.Speaker] = &Route{
			Prefix:    p,
			Origin:    OriginIGP,
			LocalPref: LocalPrefOwn,
			Class:     ClassOwn,
			FromAS:    asn.None,
		}
	}

	idx := n.solverIdx()
	cur := make([]*Route, idx.maxID+1)
	ownArr := make([]*Route, idx.maxID+1)
	for id, r := range own {
		ownArr[id] = r
	}

	// Worklist relaxation: recompute only speakers whose inputs may
	// have changed, in sorted order for determinism. The hot loop
	// compares candidates on their decisive attributes and only
	// materializes the winner's Route (one path allocation per
	// loc-RIB change), which makes whole-ecosystem sweeps cheap.
	dirty := make([]bool, idx.maxID+1)
	batch := make([]RouterID, 0, len(own))
	for id := range own {
		dirty[id] = true
		batch = append(batch, id)
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i] < batch[j] })
	var next []RouterID
	for round := 1; round <= maxStaticRounds; round++ {
		if len(batch) == 0 {
			res.Converged = true
			break
		}
		next = next[:0]
		for _, id := range batch {
			dirty[id] = false
		}
		for _, id := range batch {
			s := idx.speakers[id]
			if s == nil {
				continue
			}
			best := solveCandidate(idx, s, ownArr[id], cur)
			if routesEqual(cur[id], best) {
				continue
			}
			cur[id] = best
			for _, e := range idx.adj[id] {
				if !dirty[e.nbID] {
					dirty[e.nbID] = true
					next = append(next, e.nbID)
				}
			}
		}
		batch, next = next, batch
		sort.Slice(batch, func(i, j int) bool { return batch[i] < batch[j] })
		res.Rounds = round
	}
	bestMap := make(map[RouterID]*Route, 256)
	for id, r := range cur {
		if r != nil {
			bestMap[RouterID(id)] = r
		}
	}
	res.Best = bestMap
	return res
}

// candView is the solver's allocation-free candidate descriptor: the
// decisive attributes of a route that may not have been materialized
// yet. The effective path length is computed up front (neighbor path
// plus the neighbor's prepends), so a candidate never needs a Route —
// and Route never needs a smuggled length-override field — until it
// has actually won the scan.
type candView struct {
	lp     uint32
	plen   int
	med    uint32
	igp    uint32
	fromAS asn.AS
	from   RouterID
	origin Origin
}

// viewOf describes an already-materialized route (an origination or an
// import-filtered candidate) in candView form.
func viewOf(r *Route) candView {
	return candView{
		lp:     r.LocalPref,
		plen:   r.Path.Len(),
		med:    r.MED,
		igp:    r.IGPCost,
		fromAS: r.FromAS,
		from:   r.From,
		origin: r.Origin,
	}
}

// solveCandidate picks the speaker's best route from its origination
// and its neighbors' current bests, allocating only for the winner.
func solveCandidate(idx *solverIndex, s *Speaker, ownRoute *Route, cur []*Route) *Route {
	best := ownRoute // own routes carry LocalPrefOwn and always win
	haveBest := best != nil
	var bestView candView
	if haveBest {
		bestView = viewOf(best)
	}
	var bestEdge *solverEdge
	var bestSrc *Route

	for i := range idx.adj[s.ID] {
		e := &idx.adj[s.ID][i]
		nbBest := cur[e.nbID]
		if nbBest == nil {
			continue
		}
		// Sender-side checks without materializing the announcement.
		if !exportAdmits(e.nb, nbBest, e.pcAtNb) {
			continue
		}
		if nbBest.Path.Contains(s.AS) || e.nb.AS == s.AS {
			continue
		}
		// Candidate shape if imported.
		cv := candView{
			lp:     e.pcAtS.localPref(),
			plen:   nbBest.Path.Len() + 1 + e.pcAtNb.effectivePrepend(nbBest.Prefix),
			med:    e.pcAtNb.ExportMED,
			igp:    e.pcAtS.IGPCost,
			fromAS: e.pcAtS.NeighborAS,
			from:   e.nbID,
			origin: nbBest.Origin,
		}
		// ImportDeny needs a materialized route; only build one when a
		// filter exists (rare: default-only importers, ROV).
		var cand *Route
		if e.pcAtS.ImportDeny != nil || s.importDeny != nil {
			ann := staticExport(e.nb, nbBest, e.pcAtNb)
			cand = staticImport(s, e.pcAtS, ann)
			if cand == nil {
				continue
			}
		}
		// Compare against the current best on the decisive attributes.
		if haveBest && compareShape(bestView, cv) <= 0 {
			continue // existing best wins or ties (earlier neighbor)
		}
		haveBest, bestView = true, cv
		if cand == nil {
			// Track the winner by edge; the real route is materialized
			// once, after the scan.
			best, bestEdge, bestSrc = nil, e, nbBest
		} else {
			best, bestEdge, bestSrc = cand, nil, nil
		}
	}
	if bestEdge != nil {
		ann := staticExport(bestEdge.nb, bestSrc, bestEdge.pcAtNb)
		best = staticImport(s, bestEdge.pcAtS, ann)
	}
	return best
}

// compareShape compares the current best against a candidate, both
// described by their decisive attributes, mirroring Compare's rule
// order for the attributes the static solver exercises (age is always
// zero). It returns >0 when the candidate wins.
func compareShape(best, cand candView) int {
	switch {
	case cand.lp != best.lp:
		if cand.lp > best.lp {
			return 1
		}
		return -1
	case cand.plen != best.plen:
		if cand.plen < best.plen {
			return 1
		}
		return -1
	case cand.origin != best.origin:
		if cand.origin < best.origin {
			return 1
		}
		return -1
	case cand.fromAS == best.fromAS && cand.med != best.med:
		if cand.med < best.med {
			return 1
		}
		return -1
	case best.from == 0:
		return 1 // eBGP beats a locally sourced route at equal attrs
	case cand.igp != best.igp:
		if cand.igp < best.igp {
			return 1
		}
		return -1
	case cand.from != best.from:
		if cand.from < best.from {
			return 1
		}
		return -1
	}
	return 0
}

// ExportView computes the announcement speaker `from` would send to
// speaker `to` under the converged static result, or nil if policy
// withholds the prefix. Collectors use this to reconstruct the routes
// their peers export (Tables 3-4, Figure 5).
func (n *Network) ExportView(res *StaticResult, from, to RouterID) *Route {
	s := n.speakers[from]
	if s == nil || s.Collector {
		return nil
	}
	best := res.Best[from]
	if best == nil {
		return nil
	}
	pcTo := s.peers[to]
	if pcTo == nil {
		return nil
	}
	return staticExport(s, best, pcTo)
}

// exportAdmits runs the sender-side export checks without building
// the announcement.
func exportAdmits(nb *Speaker, src *Route, pc *PeerConfig) bool {
	if pc.ExportBestOf != nil && !pc.ExportBestOf(src) {
		return false
	}
	if src.From != 0 && (src.Communities.Has(NoExport) || src.Communities.Has(NoAdvertise)) {
		return false
	}
	if !pc.ExportAllow.Has(src.Class) {
		return false
	}
	if pc.ExportFilter != nil && !pc.ExportFilter(src) {
		return false
	}
	if src.Path.Contains(pc.NeighborAS) {
		return false
	}
	_ = nb
	return true
}

// staticExport mirrors Speaker.exportRoute for the solver.
func staticExport(s *Speaker, best *Route, pcToNeighbor *PeerConfig) *Route {
	src := best
	if pcToNeighbor.ExportBestOf != nil && !pcToNeighbor.ExportBestOf(src) {
		return nil
	}
	if src.From != 0 && (src.Communities.Has(NoExport) || src.Communities.Has(NoAdvertise)) {
		return nil
	}
	if !pcToNeighbor.ExportAllow.Has(src.Class) {
		return nil
	}
	if pcToNeighbor.ExportFilter != nil && !pcToNeighbor.ExportFilter(src) {
		return nil
	}
	if src.Path.Contains(pcToNeighbor.NeighborAS) {
		return nil
	}
	comms := src.Communities
	if pcToNeighbor.ExportAddCommunities.Len() > 0 {
		comms = comms.With(pcToNeighbor.ExportAddCommunities.Values()...)
	}
	return &Route{
		Prefix:      src.Prefix,
		Path:        src.Path.Prepend(s.AS, 1+pcToNeighbor.effectivePrepend(src.Prefix)),
		Origin:      src.Origin,
		MED:         pcToNeighbor.ExportMED,
		Communities: comms,
	}
}

// staticImport mirrors Speaker.applyImport for the solver.
func staticImport(s *Speaker, pc *PeerConfig, ann *Route) *Route {
	if pc == nil {
		return nil
	}
	if ann.Path.Contains(s.AS) {
		return nil
	}
	in := &Route{
		Prefix:      ann.Prefix,
		Path:        ann.Path,
		Origin:      ann.Origin,
		MED:         ann.MED,
		LocalPref:   pc.localPref(),
		Class:       pc.ClassifyAs,
		From:        pc.Neighbor,
		FromAS:      pc.NeighborAS,
		EBGP:        true,
		IGPCost:     pc.IGPCost,
		Communities: ann.Communities,
	}
	if pc.ImportDeny != nil && pc.ImportDeny(in) {
		return nil
	}
	if s.importDeny != nil && s.importDeny(in) {
		return nil
	}
	return in
}
