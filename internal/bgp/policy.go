package bgp

import (
	"repro/internal/asn"
	"repro/internal/netutil"
)

// PeerConfig is one speaker's policy toward one neighbor. A session
// between speakers A and B is described by a PeerConfig at A (about B)
// and one at B (about A).
type PeerConfig struct {
	// Neighbor is the remote speaker.
	Neighbor RouterID
	// NeighborAS is the remote speaker's AS.
	NeighborAS asn.AS

	// ClassifyAs tags routes imported from this neighbor; export
	// policies and the analysis code dispatch on the tag.
	ClassifyAs RouteClass

	// ImportLocalPref is the localpref assigned to all routes received
	// from this neighbor — the per-session default value the paper
	// describes operators annotating sessions with (§1). Zero means
	// "use DefaultLocalPref".
	ImportLocalPref uint32

	// ImportDeny, when non-nil, rejects matching routes at import.
	ImportDeny func(*Route) bool

	// ExportAllow is the set of route classes announced to this
	// neighbor. Locally originated routes are class ClassOwn.
	ExportAllow ClassSet

	// ExportPrepend is the number of *extra* copies of the local AS
	// prepended when announcing to this neighbor (beyond the single
	// mandatory one). This is the operator prepending knob of §3.3 and
	// Table 4.
	ExportPrepend int

	// PrefixPrepend overrides ExportPrepend for specific prefixes.
	// The measurement experiments prepend only the measurement prefix,
	// leaving the origin's other announcements untouched.
	PrefixPrepend map[netutil.Prefix]int

	// ExportMED is the MED attached to announcements to this neighbor.
	ExportMED uint32

	// ExportFilter, when non-nil, withholds routes for which it
	// returns false, after the class check. Used to scope announcements
	// (e.g. the measurement prefix's R&E announcement never crosses an
	// R&E network's commodity transit session, the property §3.1
	// verified).
	ExportFilter func(*Route) bool

	// ExportBestOf, when non-nil, selects which adj-RIB-in routes this
	// neighbor's announcements are drawn from, instead of the loc-RIB
	// best. The speaker announces the best route among those matching
	// the filter. This models the separate-VRF exports of §4.1.1,
	// where an AS preferred R&E routes but exported its commodity VRF
	// to the public collector.
	ExportBestOf func(*Route) bool

	// RFD, when non-nil, applies route-flap damping to routes received
	// from this neighbor.
	RFD *RFDConfig

	// ExportAddCommunities is attached to every announcement sent to
	// this neighbor (operator tagging, e.g. scoping communities).
	ExportAddCommunities CommunitySet

	// Delay is the propagation delay for updates sent *to* this
	// neighbor. Zero means the engine default.
	Delay Time

	// MRAI is the minimum route advertisement interval toward this
	// neighbor: successive announcements for the same prefix are
	// batched so at most one is sent per interval (RFC 4271 §9.2.1.1).
	// Zero disables batching.
	MRAI Time

	// IGPCost is the interior cost assigned to routes imported from
	// this neighbor (tie-break knob; usually zero).
	IGPCost uint32

	// down marks the session administratively/operationally down
	// (see Network.SetSessionDown).
	down bool
}

// effectivePrepend returns the prepend count to apply when announcing
// prefix p to this neighbor.
func (pc *PeerConfig) effectivePrepend(p netutil.Prefix) int {
	if n, ok := pc.PrefixPrepend[p]; ok {
		return n
	}
	return pc.ExportPrepend
}

// localPref returns the effective import localpref.
func (pc *PeerConfig) localPref() uint32 {
	if pc.ImportLocalPref == 0 {
		return DefaultLocalPref
	}
	return pc.ImportLocalPref
}

// Conventional localpref tiers. The absolute values are arbitrary;
// only the order matters to BGP. They follow the Gao-Rexford ordering
// (customer > peer > provider) with room between tiers for the R&E
// preference the paper studies.
const (
	// LocalPrefOwn makes locally originated routes win over any
	// learned route, standing in for the vendor "weight" step.
	LocalPrefOwn = 1000

	LocalPrefCustomer = 300
	LocalPrefPeer     = 200
	LocalPrefREPeer   = 180 // R&E fabric routes when preferred over commodity transit
	LocalPrefProvider = 100
)

// GaoRexfordExport returns the classes an AS may export to a neighbor
// of the given relationship, per the Gao-Rexford model: everything to
// customers; only own and customer routes to peers and providers.
func GaoRexfordExport(rel RouteClass) ClassSet {
	switch rel {
	case ClassCustomer:
		// To a customer: all routes.
		return NewClassSet(ClassOwn, ClassCustomer, ClassPeer, ClassProvider, ClassREPeer)
	case ClassPeer, ClassProvider:
		return NewClassSet(ClassOwn, ClassCustomer)
	case ClassREPeer:
		// R&E backbones additionally re-export peer-NREN routes to
		// other peer NRENs, building the global R&E fabric (§2.1).
		return NewClassSet(ClassOwn, ClassCustomer, ClassREPeer)
	default:
		return NewClassSet()
	}
}

// GaoRexfordLocalPref returns the conventional localpref for routes
// from a neighbor of the given relationship.
func GaoRexfordLocalPref(rel RouteClass) uint32 {
	switch rel {
	case ClassCustomer:
		return LocalPrefCustomer
	case ClassPeer:
		return LocalPrefPeer
	case ClassREPeer:
		return LocalPrefREPeer
	case ClassProvider:
		return LocalPrefProvider
	default:
		return DefaultLocalPref
	}
}
