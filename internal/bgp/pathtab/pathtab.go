// Package pathtab interns BGP AS paths into a canonical table so that
// identical paths — overwhelmingly common once prepend cycling and
// re-export multiply the same few announcements across thousands of
// adj-RIB-ins — are stored once and referenced by a dense 32-bit ID.
//
// IDs are assigned in first-intern order starting at 1; ID 0 is
// reserved for the empty path, so a zero-valued reference always means
// "no AS path" (the path carried on a locally originated route).
// Interning the empty path therefore returns 0 without touching the
// table. IDs are stable for the lifetime of the table: once a path has
// an ID, every later Intern of an equal path returns the same ID, and
// Resolve returns the same canonical slice.
//
// Resolve hands out the table's canonical slice without copying.
// Callers must treat it as immutable, the same contract asn.Path
// already documents; mutating operations on asn.Path return fresh
// slices, so sharing is safe throughout the engine.
package pathtab

import "repro/internal/asn"

// ID is a dense reference to an interned path. The zero ID is the
// empty path.
type ID uint32

// Empty is the reserved ID of the empty path.
const Empty ID = 0

// Table interns AS paths. The zero value is not usable; call New.
// Table is not safe for concurrent use; the engine drives it from the
// single-threaded event loop, matching every other engine structure.
type Table struct {
	// byKey maps the packed string form of a path to its ID. Using the
	// string conversion of the raw AS words as the key makes lookups
	// allocation-free on the hit path (the compiler recognises the
	// map[string] lookup with a []byte-ish conversion) and avoids a
	// second hashing scheme.
	byKey map[string]ID
	// paths[i] is the canonical slice for ID i+1.
	paths []asn.Path
	// words counts the total AS elements stored, for memory accounting.
	words int
}

// New returns an empty table.
func New() *Table {
	return &Table{byKey: make(map[string]ID)}
}

// key packs a path into a string of little-endian 4-byte AS words.
func key(p asn.Path) string {
	b := make([]byte, 4*len(p))
	for i, a := range p {
		b[4*i] = byte(a)
		b[4*i+1] = byte(a >> 8)
		b[4*i+2] = byte(a >> 16)
		b[4*i+3] = byte(a >> 24)
	}
	return string(b)
}

// Intern returns the ID for p, assigning the next free ID on first
// sight. The empty (or nil) path is always Empty. The table keeps its
// own copy of p, so the caller's slice is never retained.
func (t *Table) Intern(p asn.Path) ID {
	if len(p) == 0 {
		return Empty
	}
	k := key(p)
	if id, ok := t.byKey[k]; ok {
		return id
	}
	id := ID(len(t.paths) + 1)
	t.byKey[k] = id
	t.paths = append(t.paths, p.Clone())
	t.words += len(p)
	return id
}

// Lookup returns the ID for p without interning, reporting whether it
// is already present. The empty path is always present as Empty.
func (t *Table) Lookup(p asn.Path) (ID, bool) {
	if len(p) == 0 {
		return Empty, true
	}
	id, ok := t.byKey[key(p)]
	return id, ok
}

// Resolve returns the canonical path for id. Resolve(Empty) is nil.
// The returned slice is shared; callers must not mutate it. Resolving
// an ID the table never issued panics: references only come from
// Intern, so an unknown ID is a corrupted store, not an input error.
func (t *Table) Resolve(id ID) asn.Path {
	if id == Empty {
		return nil
	}
	if int(id) > len(t.paths) {
		panic("pathtab: resolve of unissued path ID")
	}
	return t.paths[id-1]
}

// Len returns the number of distinct non-empty paths interned.
func (t *Table) Len() int { return len(t.paths) }

// Bytes estimates the table's resident size: the canonical slices plus
// the per-entry index overhead (string key bytes, map bucket share,
// slice header). It is the figure the memory benchmarks amortise over
// the route count.
func (t *Table) Bytes() int {
	const perEntry = 16 + // string header in the map key
		24 + // slice header in paths
		16 // amortised map bucket share
	return 8*t.words + len(t.paths)*perEntry
}
