package pathtab

import (
	"encoding/binary"
	"testing"

	"repro/internal/asn"
)

// FuzzIntern feeds arbitrary byte strings as packed AS paths and
// checks the interner's invariants: intern/resolve round-trips, IDs
// are stable across re-interning, distinct paths get distinct IDs,
// and the empty path is always ID 0.
func FuzzIntern(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode the input as a sequence of paths: a length byte then
		// that many little-endian uint32 ASes, repeated.
		var paths []asn.Path
		for len(data) > 0 {
			n := int(data[0] % 16)
			data = data[1:]
			if 4*n > len(data) {
				n = len(data) / 4
			}
			p := make(asn.Path, n)
			for i := 0; i < n; i++ {
				p[i] = asn.AS(binary.LittleEndian.Uint32(data[4*i:]))
			}
			data = data[4*n:]
			paths = append(paths, p)
		}

		tab := New()
		ids := make([]ID, len(paths))
		for i, p := range paths {
			ids[i] = tab.Intern(p)
			if len(p) == 0 && ids[i] != Empty {
				t.Fatalf("empty path interned to %d", ids[i])
			}
			if len(p) > 0 && ids[i] == Empty {
				t.Fatalf("non-empty path %v interned to Empty", p)
			}
		}
		// Round-trip and stability.
		for i, p := range paths {
			if got := tab.Resolve(ids[i]); !got.Equal(p) {
				t.Fatalf("Resolve(%d) = %v, want %v", ids[i], got, p)
			}
			if again := tab.Intern(p.Clone()); again != ids[i] {
				t.Fatalf("re-intern of %v: %d -> %d", p, ids[i], again)
			}
			if id, ok := tab.Lookup(p); !ok || id != ids[i] {
				t.Fatalf("Lookup(%v) = %d, %v, want %d", p, id, ok, ids[i])
			}
		}
		// Injectivity: equal IDs imply equal paths.
		for i := range paths {
			for j := i + 1; j < len(paths); j++ {
				if (ids[i] == ids[j]) != paths[i].Equal(paths[j]) {
					t.Fatalf("ID equality disagrees with path equality: %v=%d vs %v=%d",
						paths[i], ids[i], paths[j], ids[j])
				}
			}
		}
		// Dense ID space: every ID in [1, Len] resolves.
		for id := 1; id <= tab.Len(); id++ {
			if tab.Resolve(ID(id)) == nil {
				t.Fatalf("dense ID %d resolved to nil", id)
			}
		}
	})
}
