package pathtab

import (
	"math/rand"
	"testing"

	"repro/internal/asn"
)

func TestEmptyPath(t *testing.T) {
	tab := New()
	if id := tab.Intern(nil); id != Empty {
		t.Fatalf("Intern(nil) = %d, want Empty", id)
	}
	if id := tab.Intern(asn.Path{}); id != Empty {
		t.Fatalf("Intern(empty) = %d, want Empty", id)
	}
	if p := tab.Resolve(Empty); p != nil {
		t.Fatalf("Resolve(Empty) = %v, want nil", p)
	}
	if id, ok := tab.Lookup(nil); !ok || id != Empty {
		t.Fatalf("Lookup(nil) = %d, %v", id, ok)
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d after empty interns, want 0", tab.Len())
	}
}

func TestInternAssignsDenseStableIDs(t *testing.T) {
	tab := New()
	paths := []asn.Path{
		asn.MustParsePath("174 3356 7377"),
		asn.MustParsePath("11537 7377"),
		asn.MustParsePath("174 3356 7377 7377 7377"),
	}
	var ids []ID
	for _, p := range paths {
		ids = append(ids, tab.Intern(p))
	}
	for i, id := range ids {
		if id != ID(i+1) {
			t.Fatalf("path %d got ID %d, want %d (first-intern order)", i, id, i+1)
		}
	}
	// Re-interning equal paths (even via a distinct slice) returns the
	// same ID and does not grow the table.
	for i, p := range paths {
		if id := tab.Intern(p.Clone()); id != ids[i] {
			t.Fatalf("re-intern of path %d = %d, want %d", i, id, ids[i])
		}
	}
	if tab.Len() != len(paths) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(paths))
	}
	for i, p := range paths {
		if got := tab.Resolve(ids[i]); !got.Equal(p) {
			t.Fatalf("Resolve(%d) = %v, want %v", ids[i], got, p)
		}
	}
}

func TestInternCopiesInput(t *testing.T) {
	tab := New()
	p := asn.MustParsePath("1 2 3")
	id := tab.Intern(p)
	p[0] = 99 // caller scribbles over its slice
	if got := tab.Resolve(id); !got.Equal(asn.MustParsePath("1 2 3")) {
		t.Fatalf("canonical path mutated through caller slice: %v", got)
	}
}

func TestResolveIsCanonical(t *testing.T) {
	tab := New()
	id := tab.Intern(asn.MustParsePath("7377 7377"))
	a, b := tab.Resolve(id), tab.Resolve(id)
	if &a[0] != &b[0] {
		t.Fatal("Resolve returned distinct slices for one ID; want the shared canonical slice")
	}
}

func TestLookupDoesNotIntern(t *testing.T) {
	tab := New()
	p := asn.MustParsePath("64500 64501")
	if id, ok := tab.Lookup(p); ok {
		t.Fatalf("Lookup before intern = %d, true", id)
	}
	want := tab.Intern(p)
	if id, ok := tab.Lookup(p); !ok || id != want {
		t.Fatalf("Lookup after intern = %d, %v, want %d, true", id, ok, want)
	}
}

func TestResolveUnissuedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Resolve of an unissued ID did not panic")
		}
	}()
	New().Resolve(42)
}

func TestPrefixConfusion(t *testing.T) {
	// Paths that are element-wise prefixes of each other, and paths
	// whose byte encodings could collide under a naive delimiter
	// scheme, must intern to distinct IDs.
	tab := New()
	a := tab.Intern(asn.Path{1})
	b := tab.Intern(asn.Path{1, 0})
	c := tab.Intern(asn.Path{0, 1})
	d := tab.Intern(asn.Path{0x01000000})
	if a == b || b == c || a == c || a == d {
		t.Fatalf("distinct paths shared IDs: %d %d %d %d", a, b, c, d)
	}
}

func TestBytesAccounting(t *testing.T) {
	tab := New()
	if tab.Bytes() != 0 {
		t.Fatalf("empty table Bytes = %d, want 0", tab.Bytes())
	}
	tab.Intern(asn.MustParsePath("1 2 3"))
	one := tab.Bytes()
	if one <= 0 {
		t.Fatalf("Bytes = %d after one intern, want > 0", one)
	}
	tab.Intern(asn.MustParsePath("1 2 3")) // duplicate: no growth
	if tab.Bytes() != one {
		t.Fatalf("Bytes grew on duplicate intern: %d -> %d", one, tab.Bytes())
	}
	tab.Intern(asn.MustParsePath("4 5"))
	if tab.Bytes() <= one {
		t.Fatalf("Bytes did not grow on new intern: %d", tab.Bytes())
	}
}

// TestInternRandomised cross-checks the table against a reference map
// over a workload shaped like the engine's: few distinct paths, many
// repeats, heavy prepending.
func TestInternRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := New()
	ref := make(map[string]ID)
	for i := 0; i < 5000; i++ {
		n := rng.Intn(6)
		p := make(asn.Path, n)
		for j := range p {
			p[j] = asn.AS(rng.Intn(8)) // tiny alphabet forces repeats
		}
		id := tab.Intern(p)
		if n == 0 {
			if id != Empty {
				t.Fatalf("empty path interned to %d", id)
			}
			continue
		}
		k := p.String()
		if want, ok := ref[k]; ok {
			if id != want {
				t.Fatalf("path %q: ID changed %d -> %d", k, want, id)
			}
		} else {
			ref[k] = id
		}
		if got := tab.Resolve(id); !got.Equal(p) {
			t.Fatalf("Resolve(%d) = %v, want %v", id, got, p)
		}
	}
	if tab.Len() != len(ref) {
		t.Fatalf("Len = %d, reference saw %d distinct paths", tab.Len(), len(ref))
	}
}
