package bgp

import (
	"math/rand"
	"testing"

	"repro/internal/asn"
	"repro/internal/netutil"
)

var testPrefix = netutil.MustParsePrefix("163.253.0.0/16")

func mkRoute(lp uint32, pathLen int, from RouterID) *Route {
	path := make(asn.Path, pathLen)
	for i := range path {
		path[i] = asn.AS(1000 + i)
	}
	return &Route{
		Prefix:    testPrefix,
		Path:      path,
		LocalPref: lp,
		From:      from,
		FromAS:    asn.AS(from),
		EBGP:      true,
	}
}

func TestCompareLocalPrefDominatesPathLength(t *testing.T) {
	// The crux of the paper: a higher localpref wins regardless of AS
	// path length.
	long := mkRoute(200, 9, 1)
	short := mkRoute(100, 1, 2)
	if c, step := Compare(long, short); c >= 0 || step != ByLocalPref {
		t.Errorf("Compare = %d,%v; want long path preferred by localpref", c, step)
	}
}

func TestComparePathLength(t *testing.T) {
	a := mkRoute(100, 2, 1)
	b := mkRoute(100, 3, 2)
	if c, step := Compare(a, b); c >= 0 || step != ByPathLen {
		t.Errorf("Compare = %d,%v; want shorter path", c, step)
	}
}

func TestCompareOrigin(t *testing.T) {
	a, b := mkRoute(100, 2, 1), mkRoute(100, 2, 2)
	a.Origin, b.Origin = OriginIGP, OriginIncomplete
	if c, step := Compare(a, b); c >= 0 || step != ByOrigin {
		t.Errorf("Compare = %d,%v; want IGP origin preferred", c, step)
	}
}

func TestCompareMEDOnlySameNeighbor(t *testing.T) {
	a, b := mkRoute(100, 2, 1), mkRoute(100, 2, 2)
	a.MED, b.MED = 10, 5
	// Different neighbor AS: MED ignored, falls to later steps.
	if _, step := Compare(a, b); step == ByMED {
		t.Error("MED compared across different neighbor ASes")
	}
	b.FromAS = a.FromAS
	if c, step := Compare(a, b); c <= 0 || step != ByMED {
		t.Errorf("Compare = %d,%v; want lower MED preferred", c, step)
	}
}

func TestCompareEBGPOverIBGP(t *testing.T) {
	a, b := mkRoute(100, 2, 1), mkRoute(100, 2, 2)
	b.EBGP = false
	if c, step := Compare(a, b); c >= 0 || step != ByEBGP {
		t.Errorf("Compare = %d,%v; want eBGP preferred", c, step)
	}
}

func TestCompareIGPCost(t *testing.T) {
	a, b := mkRoute(100, 2, 1), mkRoute(100, 2, 2)
	a.IGPCost, b.IGPCost = 5, 3
	if c, step := Compare(a, b); c <= 0 || step != ByIGPCost {
		t.Errorf("Compare = %d,%v; want lower IGP cost", c, step)
	}
}

func TestCompareRouteAge(t *testing.T) {
	// Appendix A: with equal localpref and path length, the oldest
	// route wins.
	older, newer := mkRoute(100, 2, 1), mkRoute(100, 2, 2)
	older.LearnedAt, newer.LearnedAt = 100, 200
	if c, step := Compare(older, newer); c >= 0 || step != ByAge {
		t.Errorf("Compare = %d,%v; want older route preferred", c, step)
	}
}

func TestCompareRouterID(t *testing.T) {
	a, b := mkRoute(100, 2, 3), mkRoute(100, 2, 7)
	if c, step := Compare(a, b); c >= 0 || step != ByRouterID {
		t.Errorf("Compare = %d,%v; want lower router ID", c, step)
	}
}

func TestCompareEqual(t *testing.T) {
	a := mkRoute(100, 2, 3)
	b := mkRoute(100, 2, 3)
	if c, step := Compare(a, b); c != 0 || step != ByNone {
		t.Errorf("Compare identical = %d,%v; want 0,equal", c, step)
	}
}

// randomRoute builds a route with random decision-relevant fields.
func randomRoute(rng *rand.Rand) *Route {
	r := mkRoute(uint32(rng.Intn(4)*100+100), 1+rng.Intn(4), RouterID(1+rng.Intn(5)))
	r.Origin = Origin(rng.Intn(3))
	r.MED = uint32(rng.Intn(3))
	r.EBGP = rng.Intn(4) != 0
	r.IGPCost = uint32(rng.Intn(3))
	r.LearnedAt = Time(rng.Intn(3))
	r.FromAS = asn.AS(1 + rng.Intn(3))
	return r
}

// TestCompareAntisymmetric checks Compare(a,b) == -Compare(b,a).
//
// Note the full relation is not transitive in real BGP because of the
// conditional MED rule; the engine always reduces candidate sets with
// a single linear pass (Best), which tolerates that, and this test
// pins the antisymmetry that pass relies on.
func TestCompareAntisymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5)) // #nosec test randomness
	for i := 0; i < 5000; i++ {
		a, b := randomRoute(rng), randomRoute(rng)
		ab, s1 := Compare(a, b)
		ba, s2 := Compare(b, a)
		if ab != -ba {
			t.Fatalf("not antisymmetric: Compare(a,b)=%d(%v) Compare(b,a)=%d(%v)\na=%v\nb=%v", ab, s1, ba, s2, a, b)
		}
	}
}

// TestCompareTransitiveWithoutMED checks transitivity when MED cannot
// interfere (all routes from distinct neighbor ASes with equal MED).
func TestCompareTransitiveWithoutMED(t *testing.T) {
	rng := rand.New(rand.NewSource(6)) // #nosec test randomness
	for i := 0; i < 3000; i++ {
		a, b, c := randomRoute(rng), randomRoute(rng), randomRoute(rng)
		a.MED, b.MED, c.MED = 0, 0, 0
		ab, _ := Compare(a, b)
		bc, _ := Compare(b, c)
		ac, _ := Compare(a, c)
		if ab < 0 && bc < 0 && ac >= 0 {
			t.Fatalf("not transitive:\na=%v\nb=%v\nc=%v", a, b, c)
		}
	}
}

func TestBest(t *testing.T) {
	if b, _ := Best(nil); b != nil {
		t.Error("Best(nil) should be nil")
	}
	if b, _ := Best([]*Route{nil, nil}); b != nil {
		t.Error("Best of nils should be nil")
	}
	lo := mkRoute(100, 2, 1)
	hi := mkRoute(200, 5, 2)
	best, step := Best([]*Route{lo, hi})
	if best != hi || step != ByLocalPref {
		t.Errorf("Best = %v (%v), want high-localpref route", best, step)
	}
	// Best must be independent of order for a 2-element set.
	best2, _ := Best([]*Route{hi, lo})
	if best2 != hi {
		t.Error("Best depends on candidate order")
	}
}

func TestDecisionStepString(t *testing.T) {
	steps := []DecisionStep{ByNone, ByLocalPref, ByPathLen, ByOrigin, ByMED, ByEBGP, ByIGPCost, ByAge, ByRouterID, DecisionStep(200)}
	seen := map[string]bool{}
	for _, s := range steps {
		str := s.String()
		if str == "" {
			t.Errorf("step %d has empty String", s)
		}
		if seen[str] {
			t.Errorf("duplicate step name %q", str)
		}
		seen[str] = true
	}
}
