package bgp

import (
	"testing"

	"repro/internal/netutil"
)

// Flap-storm regression: repeated SetSessionDown/SetSessionUp cycles —
// the fault injector's storm shape — must drive the receiver's RFD
// penalty past the suppress threshold, and the suppressed route must
// return once the reuse timer fires. RunToQuiescence must terminate
// throughout (the reuse recheck must not self-perpetuate).
func TestFlapStormRFDSuppressionAndRecovery(t *testing.T) {
	net := NewNetwork()
	net.AddSpeaker(1, 100, "provider")
	net.AddSpeaker(2, 200, "member")
	net.Connect(2, 1,
		PeerConfig{ClassifyAs: ClassCustomer, ImportLocalPref: LocalPrefCustomer, ExportAllow: GaoRexfordExport(ClassCustomer)},
		PeerConfig{ClassifyAs: ClassProvider, ImportLocalPref: LocalPrefProvider, ExportAllow: GaoRexfordExport(ClassProvider), RFD: DefaultRFD()},
	)
	p := netutil.MustParsePrefix("198.51.100.0/24")
	net.Originate(2, p)
	net.RunToQuiescence()
	if net.Speaker(1).Best(p) == nil {
		t.Fatal("no route before the storm")
	}

	// Storm: rapid down/up cycles 30 s apart, the injector's cadence.
	// Each re-up re-announces the route through the damped session.
	for i := 0; i < 4; i++ {
		net.SetSessionDown(1, 2)
		net.Run(net.Now() + 30)
		net.SetSessionUp(1, 2)
		net.Run(net.Now() + 30)
	}
	if best := net.Speaker(1).Best(p); best != nil {
		t.Fatalf("storm did not trigger RFD suppression: %v", best)
	}

	// The session is healthy again; draining must terminate and the
	// reuse timer must bring the route back.
	events := net.RunToQuiescence()
	if best := net.Speaker(1).Best(p); best == nil {
		t.Fatal("route did not recover after the storm")
	}
	if events == 0 {
		t.Fatal("quiescence drained no events — reuse recheck never fired")
	}
	// A second drain from the recovered state must be a no-op.
	if extra := net.RunToQuiescence(); extra != 0 {
		t.Fatalf("network not quiescent after recovery: %d residual events", extra)
	}
}

// Storms alternating with quiet periods: suppression must engage only
// while penalties are fresh, and every storm must end in recovery —
// the oscillating shape the fault sweep leans on.
func TestRepeatedFlapStormsAlwaysRecover(t *testing.T) {
	net := NewNetwork()
	net.AddSpeaker(1, 100, "provider")
	net.AddSpeaker(2, 200, "member")
	net.Connect(2, 1,
		PeerConfig{ClassifyAs: ClassCustomer, ImportLocalPref: LocalPrefCustomer, ExportAllow: GaoRexfordExport(ClassCustomer)},
		PeerConfig{ClassifyAs: ClassProvider, ImportLocalPref: LocalPrefProvider, ExportAllow: GaoRexfordExport(ClassProvider), RFD: DefaultRFD()},
	)
	p := netutil.MustParsePrefix("203.0.113.0/24")
	net.Originate(2, p)
	net.RunToQuiescence()

	for storm := 0; storm < 3; storm++ {
		for i := 0; i < 5; i++ {
			net.SetSessionDown(1, 2)
			net.Run(net.Now() + 30)
			net.SetSessionUp(1, 2)
			net.Run(net.Now() + 30)
		}
		net.RunToQuiescence()
		if net.Speaker(1).Best(p) == nil {
			t.Fatalf("storm %d: route never recovered", storm)
		}
		// Quiet hour between storms: penalties decay below suppress.
		net.Run(net.Now() + 3600)
		net.AdvanceTo(net.Now() + 3600)
	}
}
