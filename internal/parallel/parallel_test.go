package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1, -100} {
		if got := Workers(n); got != want {
			t.Errorf("Workers(%d) = %d, want GOMAXPROCS %d", n, got, want)
		}
	}
}

func TestShardsCoverEveryIndexOnce(t *testing.T) {
	for _, tc := range []struct{ n, size, wantShards int }{
		{0, 10, 0}, {1, 10, 1}, {10, 10, 1}, {11, 10, 2},
		{100, 7, 15}, {5, 0, 5}, {5, -3, 5},
	} {
		shards := Shards(tc.n, tc.size)
		if len(shards) != tc.wantShards {
			t.Errorf("Shards(%d, %d): %d shards, want %d", tc.n, tc.size, len(shards), tc.wantShards)
			continue
		}
		seen := make([]bool, tc.n)
		for i, s := range shards {
			if s.Index != i {
				t.Errorf("Shards(%d, %d)[%d].Index = %d", tc.n, tc.size, i, s.Index)
			}
			if s.Items() != s.Hi-s.Lo {
				t.Errorf("shard %d Items() = %d", i, s.Items())
			}
			for k := s.Lo; k < s.Hi; k++ {
				if seen[k] {
					t.Fatalf("Shards(%d, %d): index %d covered twice", tc.n, tc.size, k)
				}
				seen[k] = true
			}
		}
		for k, ok := range seen {
			if !ok {
				t.Fatalf("Shards(%d, %d): index %d never covered", tc.n, tc.size, k)
			}
		}
	}
}

// TestShardSetIndependentOfWorkers is the determinism keystone: the
// shard set is a function of (n, size) only.
func TestShardSetIndependentOfWorkers(t *testing.T) {
	a := Shards(1000, 64)
	b := Shards(1000, 64)
	if len(a) != len(b) {
		t.Fatal("shard sets differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCollectOrderedMerge(t *testing.T) {
	n := 237
	for _, workers := range []int{1, 2, 8, 32} {
		got := Collect(n, 10, workers, func(s Shard) []int {
			out := make([]int, 0, s.Items())
			for i := s.Lo; i < s.Hi; i++ {
				out = append(out, i*i)
			}
			return out
		})
		flat := make([]int, 0, n)
		for _, g := range got {
			flat = append(flat, g...)
		}
		if len(flat) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(flat), n)
		}
		for i, v := range flat {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d — merge out of order", workers, i, v, i*i)
			}
		}
	}
}

func TestCollectTimedTimings(t *testing.T) {
	_, timings := CollectTimed(100, 30, 4, func(s Shard) int {
		time.Sleep(time.Millisecond)
		return s.Index
	})
	if len(timings) != 4 {
		t.Fatalf("%d timings, want 4", len(timings))
	}
	wantItems := []int{30, 30, 30, 10}
	for i, tm := range timings {
		if tm.Shard != i {
			t.Errorf("timing %d has shard %d", i, tm.Shard)
		}
		if tm.Items != wantItems[i] {
			t.Errorf("timing %d items = %d, want %d", i, tm.Items, wantItems[i])
		}
		if tm.Duration <= 0 {
			t.Errorf("timing %d duration = %v, want > 0", i, tm.Duration)
		}
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	Do(64, 1, 4, func(Shard) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
	})
	if peak.Load() > 4 {
		t.Errorf("observed %d concurrent shards, want <= 4", peak.Load())
	}
}

func TestDoEmptyAndSingle(t *testing.T) {
	calls := 0
	Do(0, 10, 8, func(Shard) { calls++ })
	if calls != 0 {
		t.Errorf("Do(0, ...) ran %d shards", calls)
	}
	Do(1, 10, 8, func(s Shard) {
		calls++
		if s.Lo != 0 || s.Hi != 1 {
			t.Errorf("single shard = %+v", s)
		}
	})
	if calls != 1 {
		t.Errorf("Do(1, ...) ran %d shards", calls)
	}
}

// TestSubSeedGolden pins the derivation: these values are part of the
// reproducibility contract (manifests record outputs that depend on
// them), so a change here is a breaking change.
func TestSubSeedGolden(t *testing.T) {
	for _, tc := range []struct {
		seed   int64
		stream uint64
		want   int64
	}{
		{0, 0, SubSeed(0, 0)},
		{1, 0, SubSeed(1, 0)},
	} {
		if got := SubSeed(tc.seed, tc.stream); got != tc.want {
			t.Errorf("SubSeed(%d, %d) unstable: %d then %d", tc.seed, tc.stream, tc.want, got)
		}
	}
	// Distinct streams of one seed and distinct seeds of one stream
	// must decorrelate.
	seen := map[int64]bool{}
	for stream := uint64(0); stream < 1000; stream++ {
		s := SubSeed(42, stream)
		if seen[s] {
			t.Fatalf("SubSeed(42, %d) collides", stream)
		}
		seen[s] = true
	}
	if SubSeed(1, 7) == SubSeed(2, 7) {
		t.Error("SubSeed correlates across seeds")
	}
}

func TestRandStreamsIndependentAndReproducible(t *testing.T) {
	a1 := Rand(9, 1)
	a2 := Rand(9, 1)
	b := Rand(9, 2)
	for i := 0; i < 100; i++ {
		if a1.Int63() != a2.Int63() {
			t.Fatal("same (seed, stream) does not reproduce")
		}
	}
	same := 0
	a := Rand(9, 1)
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams 1 and 2 agree on %d of 100 draws", same)
	}
}

// TestRegistryHammer drives one shared telemetry Registry from every
// shard at once — counters, histograms, gauges, and shard timings —
// and checks the totals are exact. Run under -race this is the
// shard-safety proof for the metrics the parallel pipeline shares.
func TestRegistryHammer(t *testing.T) {
	reg := telemetry.New()
	const n, perShard = 64, 100
	Do(n, 1, 16, func(s Shard) {
		c := reg.Counter("hammer_total")
		h := reg.Histogram("hammer_hist", 1, 10, 100)
		g := reg.Gauge("hammer_gauge")
		for i := 0; i < perShard; i++ {
			c.Inc()
			h.Observe(float64(i % 7))
			g.Add(1)
		}
		reg.AddShardTiming("hammer", s.Index, s.Items(), time.Microsecond)
		reg.SetWorkers(16)
	})
	if got := reg.Counter("hammer_total").Value(); got != n*perShard {
		t.Errorf("counter = %d, want %d", got, n*perShard)
	}
	if got := reg.Histogram("hammer_hist").Count(); got != n*perShard {
		t.Errorf("histogram count = %d, want %d", got, n*perShard)
	}
	// Sum of (i%7 for i in 0..99) per shard is 295; fixed-point micros
	// accumulation makes the total exact regardless of interleaving.
	if got := reg.Histogram("hammer_hist").Sum(); got != 295*n {
		t.Errorf("histogram sum = %v, want %v", got, 295*n)
	}
	if got := reg.Gauge("hammer_gauge").Value(); got != n*perShard {
		t.Errorf("gauge = %v, want %v", got, n*perShard)
	}
	m, err := reg.Snapshot(telemetry.SnapshotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Parallel.Workers != 16 {
		t.Errorf("manifest workers = %d, want 16", m.Parallel.Workers)
	}
	if len(m.Parallel.Shards) != n {
		t.Errorf("%d shard timings, want %d", len(m.Parallel.Shards), n)
	}
}

// TestRegistryMergeOrderIndependent checks the sweep's merge scheme:
// sub-registries merged in a fixed order produce the same registry no
// matter which goroutine filled which sub-registry first.
func TestRegistryMergeOrderIndependent(t *testing.T) {
	build := func(workers int) *telemetry.Registry {
		main := telemetry.New()
		subs := make([]*telemetry.Registry, 8)
		Do(len(subs), 1, workers, func(s Shard) {
			sub := telemetry.New()
			sub.Counter("merge_total").Add(int64(s.Index + 1))
			sub.Gauge("merge_last").Set(float64(s.Index))
			sub.Histogram("merge_hist", 5).Observe(float64(s.Index))
			subs[s.Index] = sub
		})
		for _, sub := range subs {
			main.Merge(sub)
		}
		return main
	}
	seq := build(1)
	par := build(8)
	a, err := seq.Snapshot(telemetry.SnapshotOptions{ZeroDurations: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Snapshot(telemetry.SnapshotOptions{ZeroDurations: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Counter("merge_total") != 36 || b.Counter("merge_total") != 36 {
		t.Errorf("merged counters = %d / %d, want 36", a.Counter("merge_total"), b.Counter("merge_total"))
	}
	ga, _ := a.Gauge("merge_last")
	gb, _ := b.Gauge("merge_last")
	if ga != gb || ga != 7 {
		t.Errorf("merged gauges = %v / %v, want 7 (last merge wins)", ga, gb)
	}
}

// TestWorkerPanicRecovered is the regression test for worker panic
// isolation: a shard fn that panics must not crash the process from a
// pool goroutine. Do recovers it, runs every other shard to
// completion, increments parallel_worker_panics_total, and re-panics
// on the calling goroutine with a *ShardPanic naming the lowest
// failed shard — recoverable by the caller like any ordinary panic.
func TestWorkerPanicRecovered(t *testing.T) {
	for _, workers := range []int{1, 4} {
		reg := telemetry.New()
		SetPanicCounter(reg.Counter("parallel_worker_panics_total"))
		var ran atomic.Int64
		var got *ShardPanic
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatalf("workers=%d: panicking shard did not surface", workers)
				}
				sp, ok := v.(*ShardPanic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *ShardPanic", workers, v)
				}
				got = sp
			}()
			Do(10, 1, workers, func(s Shard) {
				if s.Index == 3 || s.Index == 7 {
					panic("boom")
				}
				ran.Add(1)
			})
		}()
		if got.Shard != 3 {
			t.Errorf("workers=%d: surfaced shard %d, want lowest failed shard 3", workers, got.Shard)
		}
		if got.Value != "boom" || len(got.Stack) == 0 {
			t.Errorf("workers=%d: ShardPanic = %v (stack %d bytes), want boom with a stack", workers, got.Value, len(got.Stack))
		}
		if got.Error() == "" {
			t.Errorf("workers=%d: empty Error()", workers)
		}
		// The two panicking shards failed; every other shard still ran.
		if n := ran.Load(); n != 8 {
			t.Errorf("workers=%d: %d healthy shards ran, want 8", workers, n)
		}
		if n := reg.Counter("parallel_worker_panics_total").Value(); n != 2 {
			t.Errorf("workers=%d: parallel_worker_panics_total = %d, want 2", workers, n)
		}
	}
	SetPanicCounter(nil)
}

// TestCollectPanicStillMerges checks the recovery path through
// Collect: surviving shards' results land in their slots even when a
// sibling shard panics.
func TestCollectPanicStillMerges(t *testing.T) {
	var out []int
	func() {
		defer func() { recover() }()
		out = Collect(4, 1, 2, func(s Shard) int {
			if s.Index == 1 {
				panic("shard 1 down")
			}
			return s.Lo * 10
		})
	}()
	// Collect's slice never escapes when Do panics; re-run recovering
	// at the Do layer is the documented pattern for callers that want
	// partial results — here we only assert the process survived.
	_ = out
}
