// Package parallel is the sharded work-pool layer behind the
// pipeline's hot loops: prefix-range sharding, bounded workers, and an
// ordered result merge, with deterministic per-shard RNG streams
// derived from a session seed.
//
// Determinism contract: the shard set produced by Shards depends only
// on the item count and shard size — never on the worker count — and
// Collect writes each shard's result into a slot indexed by the
// shard's position, so the merged output is byte-identical no matter
// how many workers ran the shards or in which order they finished.
// Combined with SubSeed-derived RNG streams (one per shard or per
// item, never shared across shards), a run with N workers reproduces a
// run with 1 worker exactly.
package parallel

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Workers resolves a worker-count setting: values <= 0 select
// runtime.GOMAXPROCS(0), the "as fast as the hardware allows" default.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Shard is one contiguous index range [Lo, Hi) of a sharded loop.
// Index is the shard's position in the shard set; it doubles as the
// stream id when deriving the shard's RNG via SubSeed.
type Shard struct {
	Index  int
	Lo, Hi int
}

// Items returns the number of items in the shard.
func (s Shard) Items() int { return s.Hi - s.Lo }

// Shards splits n items into contiguous ranges of at most size items
// each. The split depends only on (n, size), so per-shard state (RNG
// streams, timings) is independent of the worker count. A size <= 0
// yields one item per shard.
func Shards(n, size int) []Shard {
	if n <= 0 {
		return nil
	}
	if size <= 0 {
		size = 1
	}
	out := make([]Shard, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Shard{Index: len(out), Lo: lo, Hi: hi})
	}
	return out
}

// Timing records one shard's wall-clock cost, for the run manifest's
// parallel section.
type Timing struct {
	Shard    int
	Items    int
	Duration time.Duration
}

// ShardPanic is what Do re-panics with, on the calling goroutine,
// when a shard fn panicked inside a worker. Without this translation
// a panic on a pool goroutine is unconditionally fatal — no caller
// can recover it and the whole process dies; re-raising it on the
// caller turns a worker crash into an ordinary recoverable panic, so
// a long-running host (resurveyd's per-job isolation) can fail just
// the offending job and keep serving. Only the lowest-indexed shard's
// panic is kept (deterministic under any worker count); the remaining
// shards still run so sibling work sees no lost shards.
type ShardPanic struct {
	// Shard is the failed shard's index.
	Shard int
	// Value is the recovered panic value.
	Value any
	// Stack is the worker goroutine's stack at the panic site.
	Stack []byte
}

// Error renders the panic with its origin shard; the stack is kept
// separately for logs.
func (p *ShardPanic) Error() string {
	return fmt.Sprintf("parallel: shard %d panicked: %v", p.Shard, p.Value)
}

// panicCounter, when set, counts recovered worker panics
// (parallel_worker_panics_total). Package-level because Do is called
// from deep inside loops that do not thread a registry; atomic so a
// server can install it while pools are live.
var panicCounter atomic.Pointer[telemetry.Counter]

// SetPanicCounter installs the counter incremented once per recovered
// worker panic. Pass the host registry's
// Counter("parallel_worker_panics_total"); nil uninstalls.
func SetPanicCounter(c *telemetry.Counter) { panicCounter.Store(c) }

// runShard executes fn on one shard, converting a panic into a
// *ShardPanic instead of unwinding the worker goroutine.
func runShard(fn func(Shard), s Shard) (sp *ShardPanic) {
	defer func() {
		if v := recover(); v != nil {
			sp = &ShardPanic{Shard: s.Index, Value: v, Stack: debug.Stack()}
			if c := panicCounter.Load(); c != nil {
				c.Inc()
			}
		}
	}()
	fn(s)
	return nil
}

// Do runs fn once per shard of n items on min(workers, shards)
// goroutines. Shards are handed out in index order through an atomic
// cursor; with one worker the loop degenerates to a plain sequential
// sweep with no goroutines. fn must not assume any cross-shard
// ordering — shards complete in arbitrary order under load.
//
// A panicking fn does not crash the process from a worker goroutine:
// the panic is recovered, counted (see SetPanicCounter), the
// remaining shards still run, and Do re-panics on the calling
// goroutine with a *ShardPanic carrying the first failure — which the
// caller may recover like any ordinary panic.
func Do(n, size, workers int, fn func(Shard)) {
	shards := Shards(n, size)
	if len(shards) == 0 {
		return
	}
	// Keep the lowest-indexed failure, not the first to finish, so the
	// surfaced panic is deterministic under any worker count.
	var first atomic.Pointer[ShardPanic]
	keep := func(sp *ShardPanic) {
		for sp != nil {
			cur := first.Load()
			if cur != nil && cur.Shard <= sp.Shard {
				return
			}
			if first.CompareAndSwap(cur, sp) {
				return
			}
		}
	}
	w := Workers(workers)
	if w > len(shards) {
		w = len(shards)
	}
	if w <= 1 {
		for _, s := range shards {
			keep(runShard(fn, s))
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(w)
		for i := 0; i < w; i++ {
			go func() {
				defer wg.Done()
				for {
					k := int(cursor.Add(1)) - 1
					if k >= len(shards) {
						return
					}
					keep(runShard(fn, shards[k]))
				}
			}()
		}
		wg.Wait()
	}
	if sp := first.Load(); sp != nil {
		panic(sp)
	}
}

// Collect runs fn over the shards of n items and returns the per-shard
// results in shard order — the deterministic merge. Each result lands
// in its shard's slot, so the output is identical for any worker
// count.
func Collect[T any](n, size, workers int, fn func(Shard) T) []T {
	out := make([]T, len(Shards(n, size)))
	Do(n, size, workers, func(s Shard) {
		out[s.Index] = fn(s)
	})
	return out
}

// CollectTimed is Collect plus per-shard wall-clock timings (in shard
// order). Timings are observability output only; nothing in the
// result depends on them.
func CollectTimed[T any](n, size, workers int, fn func(Shard) T) ([]T, []Timing) {
	shards := Shards(n, size)
	out := make([]T, len(shards))
	timings := make([]Timing, len(shards))
	Do(n, size, workers, func(s Shard) {
		t0 := time.Now()
		out[s.Index] = fn(s)
		timings[s.Index] = Timing{Shard: s.Index, Items: s.Items(), Duration: time.Since(t0)}
	})
	return out, timings
}

// SubSeed derives the seed of an independent RNG stream from a session
// seed. The derivation is a splitmix64 mix of the seed and the stream
// id, the convention every sharded loop in this repository uses:
//
//   - the probe loss stream of one (round, prefix) uses
//     stream = uint64(roundStart)<<32 ^ prefixKey, so every round and
//     every prefix draws from its own stream and the merge is
//     independent of both shard boundaries and worker count;
//   - the fault sweep derives its schedule seed per pipeline seed with
//     a fixed stream tag (see core.Pipeline);
//   - plain per-shard state uses stream = uint64(Shard.Index).
//
// Two streams of the same seed are decorrelated by the mix; the same
// (seed, stream) pair always yields the same sub-seed, which is what
// makes a parallel run reproduce a sequential one bit for bit.
func SubSeed(seed int64, stream uint64) int64 {
	x := uint64(seed) + 0x9e3779b97f4a7c15*(stream+1)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Rand returns a fresh deterministic RNG for (seed, stream), seeded
// via SubSeed. Each caller owns the returned RNG exclusively; sharing
// one *rand.Rand across shards would both race and reintroduce
// order-dependent draws.
func Rand(seed int64, stream uint64) *rand.Rand {
	return rand.New(rand.NewSource(SubSeed(seed, stream))) // #nosec deterministic simulation
}
