package vtime

import (
	"sort"
	"testing"
)

// BenchmarkEventEngine measures the raw dispatch loop: a population of
// self-rescheduling handlers (each with its own deterministic stride)
// churning through the heap until a fixed horizon. Beyond ns/op it
// reports sustained events/s and the p99 queue depth observed across
// dispatches — the two numbers that bound how large a workload the
// virtual clock can carry.
func BenchmarkEventEngine(b *testing.B) {
	const (
		population = 256
		horizon    = Time(4096)
	)
	var depths []int
	var events int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := NewEngine(0)
		for k := 0; k < population; k++ {
			stride := Time(16 + k%33)
			var tick Handler
			tick = func(now Time) {
				depths = append(depths, eng.Pending())
				if next := now + stride; next <= horizon {
					eng.At(next, tick)
				}
			}
			eng.At(stride, tick)
		}
		eng.RunUntil(horizon)
		events += eng.Dispatched()
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	sort.Ints(depths)
	p99 := depths[len(depths)*99/100]
	b.ReportMetric(float64(p99), "queue-depth-p99")
}
