// Package vtime is the deterministic discrete-event core of the
// reproduction: a monotonic virtual clock, a stable binary-heap event
// queue whose ties break by insertion sequence number, and a Scheduler
// that dispatches handler callbacks in (time, seq) order while keeping
// an external simulator (the BGP engine) coupled to the same clock.
//
// Determinism is the design constraint everything else follows from.
// The queue is a hand-rolled binary heap over Item[T] rather than
// container/heap so the comparison key — (At, Seq) — is fixed by the
// type and cannot be accidentally weakened to time-only ordering:
// two events scheduled for the same instant always dispatch in the
// order they were scheduled, on every run, at any worker width. The
// BGP engine's in-flight update queue and the workload engine's
// handler queue share this one implementation, so both sides of the
// coupling obey the identical tie-break.
package vtime

import "sort"

// Time is a virtual timestamp in seconds since the experiment epoch,
// unit-compatible with bgp.Time (both are int64 second counts; the
// packages keep distinct named types so conversions stay visible).
type Time int64

// Item is one queue entry: a value due at a virtual time, with the
// insertion sequence number that breaks same-time ties.
type Item[T any] struct {
	At  Time
	Seq uint64
	V   T
}

// before is the total order the heap maintains: earlier time first,
// then earlier insertion.
func (it Item[T]) before(other Item[T]) bool {
	if it.At != other.At {
		return it.At < other.At
	}
	return it.Seq < other.Seq
}

// Queue is a stable min-heap of timed items. The zero value is an
// empty queue ready for use. Not safe for concurrent use; the
// schedulers built on it are single-threaded by design (parallelism in
// the reproduction lives in the probe/classify shards, never in event
// dispatch).
type Queue[T any] struct {
	h   []Item[T]
	seq uint64 // last assigned sequence number
}

// Len returns the number of pending items.
func (q *Queue[T]) Len() int { return len(q.h) }

// Push schedules v at time at, assigning the next sequence number, and
// returns the assigned number.
func (q *Queue[T]) Push(at Time, v T) uint64 {
	q.seq++
	q.h = append(q.h, Item[T]{At: at, Seq: q.seq, V: v})
	q.up(len(q.h) - 1)
	return q.seq
}

// Peek returns the earliest item without removing it.
func (q *Queue[T]) Peek() (Item[T], bool) {
	if len(q.h) == 0 {
		return Item[T]{}, false
	}
	return q.h[0], true
}

// Pop removes and returns the earliest item.
func (q *Queue[T]) Pop() (Item[T], bool) {
	if len(q.h) == 0 {
		return Item[T]{}, false
	}
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = Item[T]{} // release V for GC
	q.h = q.h[:last]
	if len(q.h) > 0 {
		q.down(0)
	}
	return top, true
}

// Seq returns the last assigned sequence number.
func (q *Queue[T]) Seq() uint64 { return q.seq }

// SetSeq overrides the sequence counter; the next Push assigns s+1.
// Used when restoring a snapshotted queue.
func (q *Queue[T]) SetSeq(s uint64) { q.seq = s }

// Sorted returns a copy of the pending items in dispatch order
// ((At, Seq) ascending) without disturbing the queue — the canonical
// traversal snapshot serialization uses.
func (q *Queue[T]) Sorted() []Item[T] {
	out := make([]Item[T], len(q.h))
	copy(out, q.h)
	sort.Slice(out, func(i, j int) bool { return out[i].before(out[j]) })
	return out
}

// Restore replaces the queue's contents with items carrying explicit
// (At, Seq) pairs and sets the sequence counter to seq. The items are
// heapified, so any input order yields the same dispatch order.
func (q *Queue[T]) Restore(items []Item[T], seq uint64) {
	q.h = append(q.h[:0], items...)
	q.seq = seq
	for i := len(q.h)/2 - 1; i >= 0; i-- {
		q.down(i)
	}
}

// up restores the heap invariant after appending at index i.
func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.h[i].before(q.h[parent]) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// down restores the heap invariant after replacing index i.
func (q *Queue[T]) down(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && q.h[l].before(q.h[least]) {
			least = l
		}
		if r < n && q.h[r].before(q.h[least]) {
			least = r
		}
		if least == i {
			return
		}
		q.h[i], q.h[least] = q.h[least], q.h[i]
		i = least
	}
}

// Clock is a monotonic virtual clock: it only moves forward.
type Clock struct {
	now Time
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// AdvanceTo moves the clock to t if t is later; earlier values are
// ignored (the clock never rewinds).
func (c *Clock) AdvanceTo(t Time) {
	if t > c.now {
		c.now = t
	}
}
