package vtime

import (
	"math/rand"
	"sort"
	"testing"
)

// TestQueueOrdering drains a randomly filled queue and requires
// (At, Seq) dispatch order.
func TestQueueOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q Queue[int]
	const n = 500
	for i := 0; i < n; i++ {
		q.Push(Time(rng.Intn(50)), i)
	}
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	var prev Item[int]
	for i := 0; i < n; i++ {
		it, ok := q.Pop()
		if !ok {
			t.Fatalf("queue empty after %d pops, want %d", i, n)
		}
		if i > 0 && it.before(prev) {
			t.Fatalf("out of order: (%d,%d) after (%d,%d)", it.At, it.Seq, prev.At, prev.Seq)
		}
		prev = it
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue returned ok")
	}
}

// TestQueueStableTies pushes many same-time items and requires FIFO
// dispatch — the determinism contract of the tie-break.
func TestQueueStableTies(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(5, i)
	}
	for i := 0; i < 100; i++ {
		it, _ := q.Pop()
		if it.V != i {
			t.Fatalf("tie dispatch order: got %d at position %d", it.V, i)
		}
	}
}

// TestQueueSorted requires Sorted to return dispatch order without
// disturbing the queue.
func TestQueueSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var q Queue[string]
	for i := 0; i < 64; i++ {
		q.Push(Time(rng.Intn(10)), "v")
	}
	s := q.Sorted()
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].before(s[j]) }) {
		t.Fatal("Sorted output not in dispatch order")
	}
	if q.Len() != 64 {
		t.Fatalf("Sorted disturbed the queue: Len = %d", q.Len())
	}
	for i := 0; i < 64; i++ {
		it, _ := q.Pop()
		if it != s[i] {
			t.Fatalf("pop %d: got (%d,%d), Sorted said (%d,%d)", i, it.At, it.Seq, s[i].At, s[i].Seq)
		}
	}
}

// TestQueueRestore rebuilds a queue from shuffled items with explicit
// sequence numbers and requires identical dispatch order plus a
// continued sequence counter.
func TestQueueRestore(t *testing.T) {
	var orig Queue[int]
	for i := 0; i < 40; i++ {
		orig.Push(Time(i%7), i)
	}
	want := orig.Sorted()

	items := append([]Item[int](nil), want...)
	rng := rand.New(rand.NewSource(9))
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })

	var q Queue[int]
	q.Restore(items, orig.Seq())
	if q.Seq() != orig.Seq() {
		t.Fatalf("Seq = %d, want %d", q.Seq(), orig.Seq())
	}
	for i := range want {
		it, _ := q.Pop()
		if it != want[i] {
			t.Fatalf("restored pop %d: got (%d,%d,%d), want (%d,%d,%d)",
				i, it.At, it.Seq, it.V, want[i].At, want[i].Seq, want[i].V)
		}
	}

	q.SetSeq(100)
	if got := q.Push(1, 0); got != 101 {
		t.Fatalf("Push after SetSeq(100) assigned %d, want 101", got)
	}
}

// TestClockMonotonic requires AdvanceTo to ignore rewinds.
func TestClockMonotonic(t *testing.T) {
	var c Clock
	c.AdvanceTo(10)
	c.AdvanceTo(5)
	if c.Now() != 10 {
		t.Fatalf("clock rewound: Now = %d", c.Now())
	}
	c.AdvanceTo(11)
	if c.Now() != 11 {
		t.Fatalf("Now = %d, want 11", c.Now())
	}
}
