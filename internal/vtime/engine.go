package vtime

import (
	"time"

	"repro/internal/telemetry"
)

// Handler is a scheduled callback; now is the virtual time it fires
// at (its scheduled time, which the clock has reached).
type Handler func(now Time)

// Scheduler is what workload runners program against: schedule
// handlers at virtual times and run the clock forward. Two
// implementations exist — Engine dispatches at exact timestamps, and
// RoundScheduler quantizes everything to round boundaries, preserving
// the survey's historical round-granularity semantics as a
// compatibility mode.
type Scheduler interface {
	// Now returns the current virtual time.
	Now() Time
	// At schedules h to fire at time t; times before Now are clamped
	// to Now (the handler fires on the next run, never in the past).
	At(t Time, h Handler)
	// RunUntil dispatches every handler due at or before t in
	// (time, seq) order, advances the clock to t, and returns the
	// number of handlers dispatched.
	RunUntil(t Time) int
}

// Engine is the event-mode Scheduler: handlers fire at their exact
// virtual timestamps. A Coupling hook keeps an external simulator in
// lockstep — before the clock advances to a later event time (and
// once more at the end of RunUntil), the hook is invoked with the
// (from, to] interval so the external side processes its own events
// up to `to` first. The workload runner wires it to bgp.Network.Run,
// making MRAI flushes and RFD reuse checks fire at their real virtual
// times interleaved with workload events.
type Engine struct {
	clock Clock
	q     Queue[Handler]

	// Coupling, when set, is called as Coupling(from, to) every time
	// the engine is about to advance its clock from `from` to `to`.
	Coupling func(from, to Time)

	dispatched int64
	wall       time.Duration
	virtual    Time

	metrics engineMetrics
}

// engineMetrics caches the vtime_* instruments; nil fields are the
// free disabled path.
type engineMetrics struct {
	dispatched *telemetry.Counter
	scheduled  *telemetry.Counter
	virtualSec *telemetry.Counter
	queueDepth *telemetry.Histogram
}

// NewEngine returns an engine whose clock starts at `start`.
func NewEngine(start Time) *Engine {
	e := &Engine{}
	e.clock.AdvanceTo(start)
	return e
}

// SetMetrics wires the engine to the registry: events dispatched and
// scheduled (counters), virtual seconds simulated (counter), and the
// queue depth observed at each dispatch (histogram). All values are
// event counts, deterministic for a given schedule, so instrumented
// manifests stay byte-identical across runs and worker widths. The
// virtual-vs-wall ratio is deliberately NOT a registry metric —
// read it via WallSeconds/VirtualSeconds and gate any gauge on the
// caller's zerotime setting, since wall time varies run to run.
func (e *Engine) SetMetrics(r *telemetry.Registry) {
	e.metrics = engineMetrics{
		dispatched: r.Counter("vtime_events_dispatched_total"),
		scheduled:  r.Counter("vtime_events_scheduled_total"),
		virtualSec: r.Counter("vtime_virtual_seconds_total"),
		queueDepth: r.Histogram("vtime_queue_depth", 0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.clock.Now() }

// Pending returns the number of scheduled-but-undispatched handlers.
func (e *Engine) Pending() int { return e.q.Len() }

// Dispatched returns the total handlers dispatched so far.
func (e *Engine) Dispatched() int64 { return e.dispatched }

// At schedules h at time t (clamped to Now if in the past).
func (e *Engine) At(t Time, h Handler) {
	if t < e.clock.Now() {
		t = e.clock.Now()
	}
	e.q.Push(t, h)
	e.metrics.scheduled.Inc()
}

// After schedules h at Now+d.
func (e *Engine) After(d Time, h Handler) { e.At(e.clock.Now()+d, h) }

// RunUntil dispatches every handler due at or before t, coupling the
// external simulator forward at each clock advance, and leaves the
// clock at t. It returns the number of handlers dispatched.
func (e *Engine) RunUntil(t Time) int {
	wallStart := time.Now()
	from := e.clock.Now()
	n := 0
	for {
		it, ok := e.q.Peek()
		if !ok || it.At > t {
			break
		}
		e.q.Pop()
		if it.At > e.clock.Now() {
			e.advance(it.At)
		}
		e.metrics.queueDepth.Observe(float64(e.q.Len()))
		it.V(it.At)
		n++
	}
	if t > e.clock.Now() {
		e.advance(t)
	}
	e.dispatched += int64(n)
	e.metrics.dispatched.Add(int64(n))
	e.virtual += e.clock.Now() - from
	e.metrics.virtualSec.Add(int64(e.clock.Now() - from))
	e.wall += time.Since(wallStart)
	return n
}

// advance couples the external simulator to `to` and moves the clock.
func (e *Engine) advance(to Time) {
	if e.Coupling != nil {
		e.Coupling(e.clock.Now(), to)
	}
	e.clock.AdvanceTo(to)
}

// WallSeconds returns the wall-clock time spent inside RunUntil.
func (e *Engine) WallSeconds() float64 { return e.wall.Seconds() }

// VirtualSeconds returns the virtual time simulated by RunUntil calls.
func (e *Engine) VirtualSeconds() float64 { return float64(e.virtual) }

// SpeedupRatio returns virtual seconds simulated per wall second — the
// virtual-vs-wall ratio of the telemetry surface. Callers recording it
// as a gauge must gate on their zerotime flag: wall time is
// nondeterministic by nature and would break byte-stable manifests.
func (e *Engine) SpeedupRatio() float64 {
	w := e.wall.Seconds()
	if w <= 0 {
		return 0
	}
	return e.VirtualSeconds() / w
}

// RoundScheduler is the compatibility Scheduler: every handler time is
// quantized UP to the next multiple of Gap before scheduling, so all
// activity lands on round boundaries — exactly the granularity the
// survey's historical round loop ran at. Between boundaries nothing
// fires; RFD penalties observe flap bursts as simultaneous, MRAI
// deferrals collapse, and the measured contrast against the event
// engine (see EXPERIMENTS.md) is the point of keeping it.
type RoundScheduler struct {
	Gap    Time
	Engine *Engine
}

// Quantize rounds t up to the scheduler's next round boundary.
func (r *RoundScheduler) Quantize(t Time) Time {
	if r.Gap <= 0 {
		return t
	}
	q := (t + r.Gap - 1) / r.Gap * r.Gap
	return q
}

// Now returns the underlying engine's virtual time.
func (r *RoundScheduler) Now() Time { return r.Engine.Now() }

// At schedules h at t quantized up to the next round boundary.
func (r *RoundScheduler) At(t Time, h Handler) { r.Engine.At(r.Quantize(t), h) }

// RunUntil runs the engine to t quantized up to the next boundary, so
// a duration that ends mid-round still flushes that round's events.
func (r *RoundScheduler) RunUntil(t Time) int { return r.Engine.RunUntil(r.Quantize(t)) }
