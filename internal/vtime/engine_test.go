package vtime

import (
	"testing"

	"repro/internal/telemetry"
)

// TestEngineDispatchOrder schedules handlers out of order and requires
// (time, seq) dispatch with the clock at each handler's timestamp.
func TestEngineDispatchOrder(t *testing.T) {
	e := NewEngine(0)
	var got []int
	var times []Time
	rec := func(id int) Handler {
		return func(now Time) {
			got = append(got, id)
			times = append(times, now)
			if e.Now() != now {
				t.Errorf("handler %d: engine clock %d != handler time %d", id, e.Now(), now)
			}
		}
	}
	e.At(30, rec(2))
	e.At(10, rec(0))
	e.At(30, rec(3)) // same time as id 2, scheduled later: fires after
	e.At(20, rec(1))
	if e.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", e.Pending())
	}
	if n := e.RunUntil(25); n != 2 {
		t.Fatalf("RunUntil(25) dispatched %d, want 2", n)
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %d, want 25", e.Now())
	}
	if n := e.RunUntil(100); n != 2 {
		t.Fatalf("RunUntil(100) dispatched %d, want 2", n)
	}
	for i, id := range got {
		if id != i {
			t.Fatalf("dispatch order %v", got)
		}
	}
	wantTimes := []Time{10, 20, 30, 30}
	for i := range times {
		if times[i] != wantTimes[i] {
			t.Fatalf("handler times %v, want %v", times, wantTimes)
		}
	}
	if e.Dispatched() != 4 {
		t.Fatalf("Dispatched = %d, want 4", e.Dispatched())
	}
}

// TestEnginePastClamp schedules a handler in the past and requires it
// to fire at Now, never rewinding the clock.
func TestEnginePastClamp(t *testing.T) {
	e := NewEngine(50)
	var at Time = -1
	e.At(10, func(now Time) { at = now })
	e.RunUntil(60)
	if at != 50 {
		t.Fatalf("past handler fired at %d, want clamp to 50", at)
	}
}

// TestEngineCoupling requires the coupling hook to run before the
// clock reaches each new event time and again at the end of RunUntil,
// with contiguous (from, to] intervals.
func TestEngineCoupling(t *testing.T) {
	e := NewEngine(0)
	type iv struct{ from, to Time }
	var ivs []iv
	e.Coupling = func(from, to Time) { ivs = append(ivs, iv{from, to}) }
	fired := false
	e.At(10, func(now Time) {
		fired = true
		// At the handler's dispatch the external side must already be
		// coupled to its timestamp.
		if len(ivs) == 0 || ivs[len(ivs)-1].to != 10 {
			t.Errorf("coupling had not reached t=10 at dispatch: %v", ivs)
		}
	})
	e.RunUntil(25)
	if !fired {
		t.Fatal("handler did not fire")
	}
	want := []iv{{0, 10}, {10, 25}}
	if len(ivs) != len(want) {
		t.Fatalf("coupling intervals %v, want %v", ivs, want)
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Fatalf("coupling intervals %v, want %v", ivs, want)
		}
	}
}

// TestEngineHandlersSchedule requires handlers to be able to schedule
// further work, including at their own timestamp.
func TestEngineHandlersSchedule(t *testing.T) {
	e := NewEngine(0)
	var seq []Time
	e.At(5, func(now Time) {
		seq = append(seq, now)
		e.At(now, func(n2 Time) { seq = append(seq, n2) })   // same instant
		e.After(10, func(n2 Time) { seq = append(seq, n2) }) // later
	})
	e.RunUntil(100)
	want := []Time{5, 5, 15}
	if len(seq) != len(want) {
		t.Fatalf("fired at %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("fired at %v, want %v", seq, want)
		}
	}
}

// TestEngineMetrics requires the vtime_* instruments to record
// deterministic event counts.
func TestEngineMetrics(t *testing.T) {
	reg := telemetry.New()
	e := NewEngine(0)
	e.SetMetrics(reg)
	for i := 0; i < 5; i++ {
		e.At(Time(i+1), func(Time) {})
	}
	e.RunUntil(10)
	if v := reg.Counter("vtime_events_scheduled_total").Value(); v != 5 {
		t.Fatalf("scheduled counter = %d, want 5", v)
	}
	if v := reg.Counter("vtime_events_dispatched_total").Value(); v != 5 {
		t.Fatalf("dispatched counter = %d, want 5", v)
	}
	if v := reg.Counter("vtime_virtual_seconds_total").Value(); v != 10 {
		t.Fatalf("virtual seconds counter = %d, want 10", v)
	}
	if c := reg.Histogram("vtime_queue_depth").Count(); c != 5 {
		t.Fatalf("queue depth observations = %d, want 5", c)
	}
	if e.VirtualSeconds() != 10 {
		t.Fatalf("VirtualSeconds = %v, want 10", e.VirtualSeconds())
	}
	if e.WallSeconds() < 0 {
		t.Fatalf("WallSeconds = %v", e.WallSeconds())
	}
	// The ratio is wall-time dependent (nondeterministic) but must be
	// non-negative and finite-by-construction.
	if r := e.SpeedupRatio(); r < 0 {
		t.Fatalf("SpeedupRatio = %v", r)
	}
}

// TestRoundScheduler requires quantization up to round boundaries and
// preserved intra-boundary ordering.
func TestRoundScheduler(t *testing.T) {
	e := NewEngine(0)
	r := &RoundScheduler{Gap: 100, Engine: e}
	var got []Time
	var order []int
	rec := func(id int) Handler {
		return func(now Time) { got = append(got, now); order = append(order, id) }
	}
	r.At(1, rec(0))   // -> 100
	r.At(99, rec(1))  // -> 100, after id 0
	r.At(100, rec(2)) // boundary stays
	r.At(101, rec(3)) // -> 200
	// RunUntil quantizes 150 up to the 200 boundary, so all four fire.
	if n := r.RunUntil(150); n != 4 {
		t.Fatalf("RunUntil(150) dispatched %d, want 4", n)
	}
	want := []Time{100, 100, 100, 200}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired at %v, want %v", got, want)
		}
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("order %v", order)
		}
	}
	if r.Now() != e.Now() {
		t.Fatalf("Now mismatch: %d vs %d", r.Now(), e.Now())
	}
	if zero := (&RoundScheduler{Gap: 0, Engine: e}).Quantize(123); zero != 123 {
		t.Fatalf("Gap 0 quantize = %d, want identity", zero)
	}
}
