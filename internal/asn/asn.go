// Package asn models autonomous system numbers and BGP AS paths.
//
// An AS path is the sequence of autonomous systems a route announcement
// has traversed, most recent first. The package supports the operations
// the reproduction needs: prepending (an AS inserting extra copies of
// its own number to lengthen the path), origin extraction, loop
// detection, and length comparison under the BGP decision process.
package asn

import (
	"fmt"
	"strconv"
	"strings"
)

// AS is an autonomous system number. Four-octet ASNs (RFC 6793) fit.
type AS uint32

// Reserved and documentation ASNs used as sentinels.
const (
	// None marks the absence of an AS (e.g. an empty path's origin).
	None AS = 0
)

// String returns the decimal representation, matching operator
// convention ("AS11537" is written by callers that want the prefix).
func (a AS) String() string { return strconv.FormatUint(uint64(a), 10) }

// Path is a BGP AS_SEQUENCE: index 0 is the most recently added
// (nearest) AS and the final element is the origin AS. The zero value
// is the empty path, as carried on a route a speaker originates.
//
// Path values are treated as immutable once built; mutating operations
// return fresh slices so routes can share storage safely.
type Path []AS

// ParsePath parses a space-separated AS path such as
// "174 3356 2152 7377". An empty string parses to the empty path.
func ParsePath(s string) (Path, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	fields := strings.Fields(s)
	p := make(Path, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("asn: bad AS %q in path %q: %w", f, s, err)
		}
		p = append(p, AS(v))
	}
	return p, nil
}

// MustParsePath is ParsePath but panics on error; for tests and tables.
func MustParsePath(s string) Path {
	p, err := ParsePath(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String formats the path the way looking glasses print it:
// space-separated, nearest AS first.
func (p Path) String() string {
	if len(p) == 0 {
		return ""
	}
	var b strings.Builder
	for i, a := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.String())
	}
	return b.String()
}

// Len returns the AS path length as used by the BGP decision process:
// the number of elements, counting prepended duplicates.
func (p Path) Len() int { return len(p) }

// Origin returns the AS that originated the route (the last element),
// or None for the empty path.
func (p Path) Origin() AS {
	if len(p) == 0 {
		return None
	}
	return p[len(p)-1]
}

// First returns the nearest AS (the neighbor the route was learned
// from, in a received path), or None for the empty path.
func (p Path) First() AS {
	if len(p) == 0 {
		return None
	}
	return p[0]
}

// Contains reports whether a appears anywhere in the path. BGP
// speakers use this for loop prevention: a route whose path contains
// the local AS must be discarded.
func (p Path) Contains(a AS) bool {
	for _, x := range p {
		if x == a {
			return true
		}
	}
	return false
}

// Prepend returns a new path with n copies of a inserted at the front.
// n <= 0 returns a copy of the receiver. This is both the normal
// "advertise to a neighbor" operation (n == 1) and operator prepending
// (n > 1).
func (p Path) Prepend(a AS, n int) Path {
	if n < 0 {
		n = 0
	}
	out := make(Path, n+len(p))
	for i := 0; i < n; i++ {
		out[i] = a
	}
	copy(out[n:], p)
	return out
}

// Clone returns an independent copy of the path.
func (p Path) Clone() Path {
	if p == nil {
		return nil
	}
	out := make(Path, len(p))
	copy(out, p)
	return out
}

// Equal reports whether two paths are element-wise identical.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Unique returns the distinct ASes in path order (first occurrence
// wins). Useful for counting the AS-level hops a path represents,
// ignoring prepending.
func (p Path) Unique() Path {
	seen := make(map[AS]bool, len(p))
	out := make(Path, 0, len(p))
	for _, a := range p {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// PrependCount returns how many times the origin AS appears at the
// tail of the path beyond its single required appearance. A path
// "7377 7377 7377" has PrependCount 2. The empty path has 0.
//
// This is the quantity Table 4 of the paper compares between R&E and
// commodity routes for the same origin.
func (p Path) PrependCount() int {
	if len(p) == 0 {
		return 0
	}
	origin := p[len(p)-1]
	n := 0
	for i := len(p) - 1; i >= 0 && p[i] == origin; i-- {
		n++
	}
	return n - 1
}

// NeighborOfOrigin returns the AS immediately upstream of the origin,
// skipping origin prepending, or None if the origin is the only AS.
// Table 4 uses this to decide whether a route entered the world via an
// R&E or a commodity neighbor.
func (p Path) NeighborOfOrigin() AS {
	if len(p) == 0 {
		return None
	}
	origin := p[len(p)-1]
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != origin {
			return p[i]
		}
	}
	return None
}
