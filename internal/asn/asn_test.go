package asn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParsePath(t *testing.T) {
	tests := []struct {
		in      string
		want    Path
		wantErr bool
	}{
		{"", nil, false},
		{"   ", nil, false},
		{"174", Path{174}, false},
		{"174 3356 2152 7377", Path{174, 3356, 2152, 7377}, false},
		{"  3754   11537 2152 7377 ", Path{3754, 11537, 2152, 7377}, false},
		{"4294967295", Path{4294967295}, false},
		{"4294967296", nil, true}, // overflows 32 bits
		{"12x", nil, true},
		{"-1", nil, true},
	}
	for _, tt := range tests {
		got, err := ParsePath(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParsePath(%q) err=%v wantErr=%v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && !got.Equal(tt.want) {
			t.Errorf("ParsePath(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestMustParsePathPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParsePath did not panic on bad input")
		}
	}()
	MustParsePath("not a path")
}

func TestPathString(t *testing.T) {
	if got := (Path{}).String(); got != "" {
		t.Errorf("empty path String = %q, want empty", got)
	}
	p := Path{3754, 11537, 2152, 7377}
	if got := p.String(); got != "3754 11537 2152 7377" {
		t.Errorf("String = %q", got)
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		p := make(Path, len(raw))
		for i, v := range raw {
			p[i] = AS(v)
		}
		got, err := ParsePath(p.String())
		return err == nil && got.Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOriginFirst(t *testing.T) {
	p := MustParsePath("174 3356 2152 7377")
	if p.Origin() != 7377 {
		t.Errorf("Origin = %v, want 7377", p.Origin())
	}
	if p.First() != 174 {
		t.Errorf("First = %v, want 174", p.First())
	}
	var empty Path
	if empty.Origin() != None || empty.First() != None {
		t.Error("empty path Origin/First should be None")
	}
}

func TestContains(t *testing.T) {
	p := MustParsePath("174 3356 2152 7377")
	for _, a := range p {
		if !p.Contains(a) {
			t.Errorf("Contains(%v) = false", a)
		}
	}
	if p.Contains(11537) {
		t.Error("Contains(11537) = true, want false")
	}
}

func TestPrepend(t *testing.T) {
	p := MustParsePath("2152 7377")
	got := p.Prepend(11537, 3)
	want := MustParsePath("11537 11537 11537 2152 7377")
	if !got.Equal(want) {
		t.Errorf("Prepend = %v, want %v", got, want)
	}
	// The receiver must be unchanged.
	if !p.Equal(MustParsePath("2152 7377")) {
		t.Errorf("Prepend mutated receiver: %v", p)
	}
	// n <= 0 copies.
	got = p.Prepend(11537, 0)
	if !got.Equal(p) {
		t.Errorf("Prepend(n=0) = %v, want %v", got, p)
	}
	got = p.Prepend(11537, -5)
	if !got.Equal(p) {
		t.Errorf("Prepend(n=-5) = %v, want %v", got, p)
	}
}

func TestPrependProperties(t *testing.T) {
	// Prepending preserves the origin and extends length by n.
	f := func(raw []uint32, a uint32, n uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := make(Path, len(raw))
		for i, v := range raw {
			p[i] = AS(v)
		}
		k := int(n % 8)
		q := p.Prepend(AS(a), k)
		if q.Len() != p.Len()+k {
			return false
		}
		if q.Origin() != p.Origin() {
			return false
		}
		if k > 0 && q.First() != AS(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := MustParsePath("1 2 3")
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Error("Clone shares storage with receiver")
	}
	var nilPath Path
	if nilPath.Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}

func TestUnique(t *testing.T) {
	p := MustParsePath("11537 11537 2152 2152 2152 7377")
	got := p.Unique()
	want := MustParsePath("11537 2152 7377")
	if !got.Equal(want) {
		t.Errorf("Unique = %v, want %v", got, want)
	}
}

func TestPrependCount(t *testing.T) {
	tests := []struct {
		path string
		want int
	}{
		{"", 0},
		{"7377", 0},
		{"2152 7377", 0},
		{"2152 7377 7377", 1},
		{"2152 7377 7377 7377 7377", 3},
		{"7377 2152 7377 7377", 1}, // only the tail run counts
	}
	for _, tt := range tests {
		p := MustParsePath(tt.path)
		if got := p.PrependCount(); got != tt.want {
			t.Errorf("PrependCount(%q) = %d, want %d", tt.path, got, tt.want)
		}
	}
}

func TestNeighborOfOrigin(t *testing.T) {
	tests := []struct {
		path string
		want AS
	}{
		{"", None},
		{"7377", None},
		{"7377 7377", None},
		{"2152 7377", 2152},
		{"11537 2152 7377 7377 7377", 2152},
	}
	for _, tt := range tests {
		p := MustParsePath(tt.path)
		if got := p.NeighborOfOrigin(); got != tt.want {
			t.Errorf("NeighborOfOrigin(%q) = %v, want %v", tt.path, got, tt.want)
		}
	}
}

func TestPrependCountMatchesPrepend(t *testing.T) {
	// Building a path by origin-prepending k extra copies must yield
	// PrependCount k, for any base path not already ending in origin.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		origin := AS(rng.Intn(1 << 16)) // #nosec test randomness
		base := Path{origin}
		for i := 0; i < rng.Intn(5); i++ {
			next := AS(rng.Intn(1 << 16))
			if next == origin {
				next++
			}
			base = base.Prepend(next, 1)
		}
		k := rng.Intn(5)
		// Origin prepending inserts extra origin copies adjacent to the
		// origin: rebuild from the origin side.
		withPrepends := Path{origin}.Prepend(origin, k)
		for i := len(base) - 2; i >= 0; i-- {
			withPrepends = withPrepends.Prepend(base[i], 1)
		}
		if got := withPrepends.PrependCount(); got != k {
			t.Fatalf("trial %d: PrependCount(%v) = %d, want %d", trial, withPrepends, got, k)
		}
	}
}
