// Package cliconf is the shared flag surface of the reproduction's
// binaries. cmd/resurvey, cmd/reprobe, and cmd/reinfer used to parse
// -seed, -faults, -manifest, -metrics (and now -workers) each with
// their own copies; cliconf registers them once with identical names,
// semantics, and validation, and converts the parsed Config into
// core.Pipeline options so every binary constructs its pipeline the
// same way.
package cliconf

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/optimize"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/vtime"
)

// Config holds the shared flag values. Commands embed it in their own
// options struct and register the subset of flags they support; field
// values at Register time become the flag defaults, so a command can
// keep its historical defaults (reprobe defaults -small to true).
type Config struct {
	Small bool
	// Scale selects the topology size tier by name (small, paper,
	// internet); empty keeps the -small / default behaviour. The
	// internet tier builds the ~80K-AS / ~1M-prefix ecosystem on the
	// compact arena-backed RIB layout.
	Scale       string
	Seed        int64
	Workers     int
	Faults      float64
	Incremental bool
	Manifest    string
	Metrics     bool
	ZeroTime    bool
	// SnapshotDir and Resume drive checkpoint/restart (FlagSnapshot):
	// with -snapshot-dir the run writes an engine+telemetry checkpoint
	// after every configuration round; with -resume it continues from
	// the newest valid checkpoint there instead of starting cold.
	SnapshotDir string
	Resume      bool
	// Workload and Duration drive virtual-clock workload runs
	// (FlagWorkload): -workload picks a named schedule and replaces
	// the survey's experiment script; -duration overrides the
	// workload's default virtual horizon in seconds.
	Workload  string
	Duration  int64
	RoundMode bool
	// Scenario and ROV drive adversarial scenario sweeps
	// (FlagScenario): -scenario picks a family (hijack, leak) swept
	// over RPKI ROV adoption fractions; -rov caps the adoption ladder,
	// or — without -scenario — deploys ROV at that fraction for the
	// run.
	Scenario string
	ROV      float64
	// Objective, Budget, and Strategy drive policy-optimization search
	// runs (FlagOptimize): -objective picks the target spec
	// ("catchment:re=0.4" or "probe:re=...,commodity=...,loss=...") and
	// switches the run into search mode; -budget bounds the candidate
	// evaluations; -strategy picks the searcher.
	Objective string
	Budget    int
	Strategy  string
}

// JobOptions is the portable description of one pipeline run — the
// configuration fields with run semantics, separated from Config's
// front-end concerns (manifest paths, metrics dumps, checkpoint
// directories). The CLI flags map onto it via Config.Job, and
// resurveyd job submissions unmarshal into it directly, so both front
// ends validate and construct a run through the identical path.
type JobOptions struct {
	Small bool `json:"small,omitempty"`
	// Scale names the topology size tier (small, paper, internet);
	// empty defers to Small. See topo.ParseScale.
	Scale       string  `json:"scale,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	Workers     int     `json:"workers,omitempty"`
	Faults      float64 `json:"faults,omitempty"`
	Incremental bool    `json:"incremental"`
	// Workload selects a named virtual-clock workload (see
	// core.WorkloadNames); empty runs the standard survey script.
	Workload string `json:"workload,omitempty"`
	// DurationSeconds bounds the workload's virtual horizon; 0 uses
	// the named workload's default.
	DurationSeconds int64 `json:"duration_seconds,omitempty"`
	// RoundMode quantizes the workload to round boundaries (the
	// compatibility scheduler) instead of event-granularity timers.
	RoundMode bool `json:"round_mode,omitempty"`
	// Scenario selects an adversarial scenario family (see
	// faults.ScenarioNames) swept over ROV adoption; empty disables.
	Scenario string `json:"scenario,omitempty"`
	// ROV is the RPKI route-origin-validation adoption fraction in
	// [0, 1]: the adoption-ladder cap for scenario sweeps, the
	// deployed fraction for plain and workload runs (0 = off).
	ROV float64 `json:"rov,omitempty"`
	// Objective selects a policy-optimization search run targeting the
	// given spec (see optimize.ParseSpec); empty disables.
	Objective string `json:"objective,omitempty"`
	// Budget bounds the search's candidate evaluations (0 scores only
	// the baseline configuration).
	Budget int `json:"budget,omitempty"`
	// Strategy names the searcher ("hillclimb" or "evolve"); empty
	// means hillclimb.
	Strategy string `json:"strategy,omitempty"`
}

// WorkloadOptions converts the job's workload fields into the core
// run options (zero value when no workload is selected).
func (j JobOptions) WorkloadOptions() core.WorkloadOptions {
	return core.WorkloadOptions{
		Name:      j.Workload,
		Duration:  vtime.Time(j.DurationSeconds),
		RoundMode: j.RoundMode,
	}
}

// Validate rejects job values the pipeline cannot honour — the single
// check both the flag layer and the service's submission endpoint run,
// so a config the CLI rejects is rejected by the server with the same
// message, and vice versa.
func (j JobOptions) Validate() error {
	if math.IsNaN(j.Faults) || math.IsInf(j.Faults, 0) || j.Faults < 0 || j.Faults > 1 {
		return fmt.Errorf("-faults intensity %v out of range: want 0 (off) or a value in (0, 1]", j.Faults)
	}
	if j.Scale != "" {
		s, err := topo.ParseScale(j.Scale)
		if err != nil {
			return err
		}
		if j.Small && s != topo.ScaleSmall {
			return fmt.Errorf("-small conflicts with -scale %s", s)
		}
	}
	if j.Workers < 0 {
		return fmt.Errorf("-workers %d out of range: want >= 0 (0 = GOMAXPROCS)", j.Workers)
	}
	if j.Workload != "" && !core.KnownWorkload(j.Workload) {
		return fmt.Errorf("-workload %q unknown: want one of %v", j.Workload, core.WorkloadNames())
	}
	if j.DurationSeconds < 0 {
		return fmt.Errorf("-duration %d out of range: want >= 0 (0 = workload default)", j.DurationSeconds)
	}
	if j.DurationSeconds > 0 && j.Workload == "" {
		return fmt.Errorf("-duration requires -workload")
	}
	if j.Scenario != "" && !faults.KnownScenario(j.Scenario) {
		return fmt.Errorf("-scenario %q unknown: want one of %v", j.Scenario, faults.ScenarioNames())
	}
	if j.Scenario != "" && j.Workload != "" {
		return fmt.Errorf("-scenario conflicts with -workload (pick one run mode)")
	}
	if math.IsNaN(j.ROV) || math.IsInf(j.ROV, 0) || j.ROV < 0 || j.ROV > 1 {
		return fmt.Errorf("-rov fraction %v out of range: want a value in [0, 1]", j.ROV)
	}
	if j.Objective != "" {
		if _, err := optimize.ParseSpec(j.Objective); err != nil {
			return err
		}
		if j.Workload != "" {
			return fmt.Errorf("-objective conflicts with -workload (pick one run mode)")
		}
		if j.Scenario != "" {
			return fmt.Errorf("-objective conflicts with -scenario (pick one run mode)")
		}
	}
	if j.Budget < 0 {
		return fmt.Errorf("-budget %d out of range: want >= 0 (0 = score the baseline only)", j.Budget)
	}
	if j.Budget > 0 && j.Objective == "" {
		return fmt.Errorf("-budget requires -objective")
	}
	if j.Strategy != "" {
		if _, err := optimize.NewSearcher(j.Strategy); err != nil {
			return err
		}
		if j.Objective == "" {
			return fmt.Errorf("-strategy requires -objective")
		}
	}
	return nil
}

// PipelineOptions converts the job into core.Pipeline options, wiring
// reg (nil is fine) as the metrics sink.
func (j JobOptions) PipelineOptions(reg *telemetry.Registry) []core.PipelineOption {
	opts := []core.PipelineOption{
		core.WithSeed(j.Seed),
		core.WithWorkers(j.Workers),
		core.WithFaults(j.Faults),
		core.WithScenario(j.Scenario),
		core.WithROV(j.ROV),
		core.WithIncremental(j.Incremental),
		core.WithMetrics(reg),
	}
	if j.Small {
		opts = append(opts, core.WithSmall())
	}
	if j.Scale != "" {
		// Validate has already vetted the name; ParseScale cannot fail
		// here, and WithScale overrides WithSmall inside the pipeline.
		if s, err := topo.ParseScale(j.Scale); err == nil {
			opts = append(opts, core.WithScale(s))
		}
	}
	if j.Objective != "" {
		opts = append(opts,
			core.WithObjective(j.Objective),
			core.WithBudget(j.Budget),
			core.WithStrategy(j.Strategy))
	}
	return opts
}

// Pipeline builds the core.Pipeline the job describes; extra options
// append after (and can thus override) the job-derived ones.
func (j JobOptions) Pipeline(reg *telemetry.Registry, extra ...core.PipelineOption) *core.Pipeline {
	return core.NewPipeline(append(j.PipelineOptions(reg), extra...)...)
}

// Job extracts the run-defining subset of the parsed flags.
func (c Config) Job() JobOptions {
	return JobOptions{
		Small:           c.Small,
		Scale:           c.Scale,
		Seed:            c.Seed,
		Workers:         c.Workers,
		Faults:          c.Faults,
		Incremental:     c.Incremental,
		Workload:        c.Workload,
		DurationSeconds: c.Duration,
		RoundMode:       c.RoundMode,
		Scenario:        c.Scenario,
		ROV:             c.ROV,
		Objective:       c.Objective,
		Budget:          c.Budget,
		Strategy:        c.Strategy,
	}
}

// Flags selects which shared flags Register installs.
type Flags uint

const (
	// FlagSmall registers -small.
	FlagSmall Flags = 1 << iota
	// FlagSeed registers -seed.
	FlagSeed
	// FlagWorkers registers -workers.
	FlagWorkers
	// FlagFaults registers -faults.
	FlagFaults
	// FlagObservability registers -manifest, -metrics, and -zerotime.
	FlagObservability
	// FlagIncremental registers -incremental.
	FlagIncremental
	// FlagSnapshot registers -snapshot-dir and -resume. Not part of
	// FlagAll: only commands that implement checkpointing (resurvey)
	// opt in.
	FlagSnapshot
	// FlagWorkload registers -workload, -duration, and -round. Not
	// part of FlagAll: only commands that run virtual-clock workloads
	// (resurvey) opt in.
	FlagWorkload
	// FlagScenario registers -scenario and -rov. Not part of FlagAll:
	// only commands that run adversarial scenario sweeps (resurvey)
	// opt in.
	FlagScenario
	// FlagOptimize registers -objective, -budget, and -strategy. Not
	// part of FlagAll: only commands that run policy-optimization
	// searches (reoptimize) opt in.
	FlagOptimize

	// FlagAll registers every shared flag.
	FlagAll = FlagSmall | FlagSeed | FlagWorkers | FlagFaults | FlagObservability | FlagIncremental
)

// Register installs the selected shared flags on fs, with defaults
// taken from c's current field values.
func Register(fs *flag.FlagSet, c *Config, which Flags) {
	if which&FlagSmall != 0 {
		fs.BoolVar(&c.Small, "small", c.Small, "run the reduced-scale ecosystem")
		fs.StringVar(&c.Scale, "scale", c.Scale, "topology size tier: small, paper, or internet (~80K ASes / ~1M prefixes on the compact arena RIB); overrides -small, empty keeps the default")
	}
	if which&FlagSeed != 0 {
		fs.Int64Var(&c.Seed, "seed", c.Seed, "session seed: drives topology generation and every derived stream (probe loss, fault schedules)")
	}
	if which&FlagWorkers != 0 {
		fs.IntVar(&c.Workers, "workers", c.Workers, "parallel shard workers for probing, classification, and the fault sweep (0 = GOMAXPROCS); output is byte-identical at any worker count")
	}
	if which&FlagFaults != 0 {
		fs.Float64Var(&c.Faults, "faults", c.Faults, "max fault intensity in (0, 1]: run the fault-intensity sweep (reduced scale) up to this intensity; 0 disables")
	}
	if which&FlagIncremental != 0 {
		fs.BoolVar(&c.Incremental, "incremental", c.Incremental, "propagate only route deltas through the BGP engine (-incremental=false keeps the full-reconvergence reference path); output is byte-identical either way")
	}
	if which&FlagSnapshot != 0 {
		fs.StringVar(&c.SnapshotDir, "snapshot-dir", c.SnapshotDir, "write a checkpoint (engine state, partial survey results, telemetry registry) to this directory after every configuration round")
		fs.BoolVar(&c.Resume, "resume", c.Resume, "continue from the newest valid checkpoint in -snapshot-dir, skipping completed rounds; corrupt checkpoints fall back to the next-newest valid one, no usable checkpoint to a cold start; output is byte-identical to an uninterrupted run")
	}
	if which&FlagWorkload != 0 {
		fs.StringVar(&c.Workload, "workload", c.Workload, "run a named virtual-clock workload instead of the survey script: update-storm, flap-cascade-rfd, diurnal-churn, or replay (reads an MRT trace on stdin); deterministic and byte-identical at any -workers width")
		fs.Int64Var(&c.Duration, "duration", c.Duration, "virtual horizon of the -workload run in seconds (0 = the workload's default)")
		fs.BoolVar(&c.RoundMode, "round", c.RoundMode, "quantize the -workload to round boundaries (the historical round-granularity scheduler) instead of event-granularity timers")
	}
	if which&FlagScenario != 0 {
		fs.StringVar(&c.Scenario, "scenario", c.Scenario, "run an adversarial scenario sweep instead of the survey script: hijack (forged-origin announcement of the measurement prefix) or leak (Gao-Rexford-violating customer re-export), swept over RPKI ROV adoption fractions and scored against ground truth")
		fs.Float64Var(&c.ROV, "rov", c.ROV, "RPKI route-origin-validation adoption fraction in [0, 1]: caps the -scenario sweep's adoption ladder (0 = the full default ladder), or deploys ROV at that fraction for -workload runs")
	}
	if which&FlagOptimize != 0 {
		fs.StringVar(&c.Objective, "objective", c.Objective, "run a policy-optimization search toward this target: catchment:re=<frac> (per-AS catchment split) or probe:re=<frac>,commodity=<frac>,loss=<frac> (probe classification distribution); output is byte-identical at any -workers width")
		fs.IntVar(&c.Budget, "budget", c.Budget, "candidate-evaluation budget for the -objective search (0 = score the baseline configuration only)")
		fs.StringVar(&c.Strategy, "strategy", c.Strategy, "search strategy for -objective: hillclimb (seeded hill-climb with restarts) or evolve ((mu+lambda) evolutionary loop); default hillclimb")
	}
	if which&FlagObservability != 0 {
		fs.StringVar(&c.Manifest, "manifest", c.Manifest, "write a run manifest (seed, options, phase durations, all metrics) to this file as deterministic JSON")
		fs.BoolVar(&c.Metrics, "metrics", c.Metrics, "print a Prometheus-style metrics exposition at exit")
		fs.BoolVar(&c.ZeroTime, "zerotime", c.ZeroTime, "zero wall-time fields in the manifest, for byte-stable run comparisons")
	}
}

// Validate rejects flag values the pipeline cannot honour, identically
// in every binary: the run-defining fields via JobOptions.Validate
// (shared with resurveyd's submission endpoint), plus the flag-only
// cross-checks.
func (c Config) Validate() error {
	if err := c.Job().Validate(); err != nil {
		return err
	}
	if c.Resume && c.SnapshotDir == "" {
		return fmt.Errorf("-resume requires -snapshot-dir")
	}
	return nil
}

// NewRegistry returns a live telemetry registry when any flag needs
// one (-manifest or -metrics), nil otherwise — nil keeps the whole
// instrumented pipeline at its zero-cost disabled path.
func (c Config) NewRegistry() *telemetry.Registry {
	if c.Manifest == "" && !c.Metrics {
		return nil
	}
	return telemetry.New()
}

// PipelineOptions converts the parsed flags into core.Pipeline
// options, wiring reg (from NewRegistry; nil is fine) as the metrics
// sink.
func (c Config) PipelineOptions(reg *telemetry.Registry) []core.PipelineOption {
	return c.Job().PipelineOptions(reg)
}

// Pipeline builds the core.Pipeline the flags describe; extra options
// append after (and can thus override) the flag-derived ones.
func (c Config) Pipeline(reg *telemetry.Registry, extra ...core.PipelineOption) *core.Pipeline {
	return c.Job().Pipeline(reg, extra...)
}

// WriteManifest snapshots reg to the -manifest path (a no-op without
// the flag), honouring -zerotime, with options recorded verbatim.
func (c Config) WriteManifest(reg *telemetry.Registry, options any) error {
	if c.Manifest == "" {
		return nil
	}
	m, err := reg.Snapshot(telemetry.SnapshotOptions{
		Seed:          c.Seed,
		Options:       options,
		ZeroDurations: c.ZeroTime,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(c.Manifest)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DumpMetrics writes the Prometheus text exposition to w when
// -metrics was given (a no-op otherwise).
func (c Config) DumpMetrics(w io.Writer, reg *telemetry.Registry) error {
	if !c.Metrics {
		return nil
	}
	fmt.Fprintln(w)
	return reg.WriteProm(w)
}
