package cliconf

import (
	"flag"
	"math"
	"testing"
)

func TestRegisterKeepsFieldDefaults(t *testing.T) {
	// Commands seed the Config with their historical defaults before
	// Register; parsing no flags must leave those values intact.
	c := Config{Small: true, Seed: 7, Incremental: true}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	Register(fs, &c, FlagAll)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if !c.Small || c.Seed != 7 || c.Workers != 0 || c.Faults != 0 || !c.Incremental {
		t.Errorf("defaults clobbered: %+v", c)
	}
}

func TestRegisterParsesSharedFlags(t *testing.T) {
	c := Config{Incremental: true} // -incremental=false must override the default
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	Register(fs, &c, FlagAll)
	args := []string{
		"-small", "-seed", "42", "-workers", "8", "-faults", "0.5",
		"-incremental=false", "-manifest", "m.json", "-metrics", "-zerotime",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	want := Config{Small: true, Seed: 42, Workers: 8, Faults: 0.5,
		Incremental: false, Manifest: "m.json", Metrics: true, ZeroTime: true}
	if c != want {
		t.Errorf("parsed %+v, want %+v", c, want)
	}
}

func TestRegisterSubsets(t *testing.T) {
	var c Config
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	Register(fs, &c, FlagSeed|FlagWorkers)
	for _, name := range []string{"seed", "workers"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
	for _, name := range []string{"small", "faults", "incremental", "manifest", "metrics", "zerotime"} {
		if fs.Lookup(name) != nil {
			t.Errorf("flag -%s registered but not requested", name)
		}
	}
}

func TestValidate(t *testing.T) {
	for _, bad := range []Config{
		{Faults: -0.1},
		{Faults: 1.5},
		{Faults: math.NaN()},
		{Faults: math.Inf(1)},
		{Workers: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", bad)
		}
	}
	for _, good := range []Config{
		{},
		{Faults: 0.5, Workers: 8},
		{Faults: 1},
	} {
		if err := good.Validate(); err != nil {
			t.Errorf("Validate(%+v) rejected: %v", good, err)
		}
	}
}

// TestJobValidationParity pins the CLI/server contract: a Config and
// the JobOptions extracted from it accept and reject identically (with
// the same message), so a job submission resurveyd rejects is exactly
// one the flags would reject.
func TestJobValidationParity(t *testing.T) {
	for _, c := range []Config{
		{},
		{Faults: -0.1},
		{Faults: 1.5},
		{Faults: math.NaN()},
		{Workers: -1},
		{Small: true, Seed: 7, Workers: 8, Faults: 0.5, Incremental: true},
	} {
		cfgErr, jobErr := c.Validate(), c.Job().Validate()
		if (cfgErr == nil) != (jobErr == nil) {
			t.Errorf("Config(%+v): Validate=%v but Job().Validate=%v", c, cfgErr, jobErr)
		} else if cfgErr != nil && cfgErr.Error() != jobErr.Error() {
			t.Errorf("Config(%+v): messages diverge: %q vs %q", c, cfgErr, jobErr)
		}
	}
}

func TestJobPipelineWiring(t *testing.T) {
	j := JobOptions{Small: true, Seed: 5, Workers: 3, Faults: 0.25, Incremental: true}
	pl := j.Pipeline(nil)
	if pl.Seed() != 5 || pl.Workers() != 3 || pl.Faults() != 0.25 || !pl.Incremental() {
		t.Errorf("pipeline carries seed=%d workers=%d faults=%v incremental=%v",
			pl.Seed(), pl.Workers(), pl.Faults(), pl.Incremental())
	}
}

func TestScaleFlag(t *testing.T) {
	var c Config
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	Register(fs, &c, FlagSmall)
	if err := fs.Parse([]string{"-scale", "internet"}); err != nil {
		t.Fatal(err)
	}
	if c.Scale != "internet" {
		t.Fatalf("parsed scale %q", c.Scale)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("-scale internet rejected: %v", err)
	}
	if err := (Config{Scale: "planet"}).Validate(); err == nil {
		t.Error("-scale planet accepted")
	}
	if err := (Config{Small: true, Scale: "paper"}).Validate(); err == nil {
		t.Error("-small with -scale paper accepted")
	}
	if err := (Config{Small: true, Scale: "small"}).Validate(); err != nil {
		t.Errorf("-small with agreeing -scale small rejected: %v", err)
	}
	// The tier must reach the pipeline's topology configuration and
	// override -small (Job round-trips the field like the server path).
	pl := Config{Scale: "paper"}.Job().Pipeline(nil)
	if got := pl.SurveyOptions().Topology; got.MembersUS == 0 || got.CompactRIB {
		t.Errorf("paper scale not installed: %+v", got)
	}
	pl = Config{Scale: "internet"}.Job().Pipeline(nil)
	if got := pl.SurveyOptions().Topology; !got.CompactRIB || !got.DensePrefixes {
		t.Errorf("internet scale not installed: %+v", got)
	}
}

func TestOptimizeFlags(t *testing.T) {
	var c Config
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	Register(fs, &c, FlagOptimize)
	args := []string{"-objective", "catchment:re=0.3", "-budget", "24", "-strategy", "evolve"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if c.Objective != "catchment:re=0.3" || c.Budget != 24 || c.Strategy != "evolve" {
		t.Fatalf("parsed %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("valid optimize config rejected: %v", err)
	}
	for _, bad := range []Config{
		{Objective: "catchment"},                            // missing re=
		{Objective: "catchment:re=1.5"},                     // out of range
		{Objective: "summit:re=0.5"},                        // unknown kind
		{Objective: "catchment:re=0.5", Strategy: "anneal"}, // unknown strategy
		{Objective: "catchment:re=0.5", Budget: -1},         // negative budget
		{Budget: 10},         // -budget without -objective
		{Strategy: "evolve"}, // -strategy without -objective
		{Objective: "catchment:re=0.5", Workload: "update-storm"},
		{Objective: "catchment:re=0.5", Scenario: "hijack"},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", bad)
		}
	}
	// The fields must reach the pipeline (Job round-trips them like the
	// server path does).
	pl := Config{Objective: "probe:re=0.5,commodity=0.5,loss=0", Budget: 12, Strategy: "evolve"}.Job().Pipeline(nil)
	if pl.Objective() != "probe:re=0.5,commodity=0.5,loss=0" || pl.Budget() != 12 || pl.Strategy() != "evolve" {
		t.Errorf("pipeline carries objective=%q budget=%d strategy=%q",
			pl.Objective(), pl.Budget(), pl.Strategy())
	}
	opts := pl.OptimizeOptions()
	if opts.Objective == "" || opts.Budget != 12 || opts.Strategy != "evolve" {
		t.Errorf("OptimizeOptions not threaded: %+v", opts)
	}
}

func TestNewRegistryNilWhenUnobserved(t *testing.T) {
	var c Config
	if c.NewRegistry() != nil {
		t.Error("registry allocated with no -manifest/-metrics")
	}
	if (Config{Manifest: "m.json"}).NewRegistry() == nil {
		t.Error("no registry with -manifest set")
	}
	if (Config{Metrics: true}).NewRegistry() == nil {
		t.Error("no registry with -metrics set")
	}
}

func TestPipelineWiring(t *testing.T) {
	c := Config{Small: true, Seed: 5, Workers: 3, Faults: 0.25, Incremental: true}
	pl := c.Pipeline(nil)
	if pl.Seed() != 5 || pl.Workers() != 3 || pl.Faults() != 0.25 || !pl.Incremental() {
		t.Errorf("pipeline carries seed=%d workers=%d faults=%v incremental=%v",
			pl.Seed(), pl.Workers(), pl.Faults(), pl.Incremental())
	}
	if pl.SurveyOptions().Topology.Seed != 5 {
		t.Errorf("survey topology seed = %d, want 5", pl.SurveyOptions().Topology.Seed)
	}
	// -incremental=false must reach the pipeline as the reference mode
	// even though NewPipeline's own default is incremental.
	if pl := (Config{}).Pipeline(nil); pl.Incremental() {
		t.Error("Config zero value did not select the full reference path")
	}
}
