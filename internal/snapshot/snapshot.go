// Package snapshot is the versioned binary container the engine and
// the survey checkpoints serialize into. A snapshot is a magic number,
// a big-endian uint16 format version, and a sequence of sections, each
// [id byte][uvarint payload length][payload][crc32(payload) as
// big-endian uint32]. The container is deliberately dumb: it knows
// nothing about BGP — packages encode their own section payloads with
// Enc and decode them with Dec — but it owns the properties every
// consumer needs: deterministic bytes (writers append in a fixed
// order; Enc has no map iteration), integrity (per-section CRC so a
// corrupted checkpoint is detected before any state is half-applied),
// and forward refusal (a decoder rejects snapshots from a future
// format version instead of misreading them).
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Format versions. Any change to a payload layout — field added,
// removed, reordered, or re-encoded — must bump the owning magic's
// version and be documented in FORMAT.md; the golden-format tests
// exist to force that bump.
const (
	// EngineVersion is the bgp.Network snapshot format version. v2
	// added the interned path table section (paths referenced by ID
	// from the route table and churn log); v1 snapshots, with inline
	// paths, remain decodable.
	EngineVersion = 2
	// CheckpointVersion is the resurvey checkpoint format version.
	CheckpointVersion = 1
	// JobVersion is the resurveyd job-manifest format version. v2
	// carries the full portable job options (workload, scenario, and
	// optimizer fields) and admits every job kind; v1 manifests, which
	// recorded only survey/sweep jobs, remain decodable.
	JobVersion = 2
	// SearchVersion is the optimizer search-state format version.
	SearchVersion = 1
)

// Magic numbers distinguishing the container uses.
const (
	// EngineMagic opens a serialized bgp.Network ("R&E BGP").
	EngineMagic = "RBGP"
	// CheckpointMagic opens a resurvey checkpoint ("R&E checkpoint").
	CheckpointMagic = "RCKP"
	// JobMagic opens a resurveyd job manifest ("R&E job") — the durable
	// record of one submitted job's identity, options, and lifecycle
	// state that lets a restarted server resume interrupted jobs.
	JobMagic = "RJOB"
	// SearchMagic opens an optimizer search-state checkpoint ("R&E
	// optimize"): the best-so-far candidate, generation counter, and
	// RNG cursors a resumed search continues from.
	SearchMagic = "ROPT"
)

// maxSnapshotBytes bounds how much a reader will buffer. Real
// snapshots of even the full-scale ecosystem are a few tens of
// megabytes; the cap exists so a fuzzed length prefix cannot make the
// decoder allocate unbounded memory.
const maxSnapshotBytes = 1 << 30

// ErrCorrupt is wrapped by every decode failure caused by the input
// bytes (bad magic, bad CRC, truncation, overlong section). Callers
// distinguish it from I/O errors with errors.Is.
var ErrCorrupt = errors.New("snapshot: corrupt")

// ErrVersion is wrapped when the input's format version is newer than
// the decoder understands.
var ErrVersion = errors.New("snapshot: unsupported format version")

// Section is one decoded [id, payload] pair.
type Section struct {
	ID      byte
	Payload []byte
}

// Writer accumulates sections and writes the container.
type Writer struct {
	magic   string
	version uint16
	buf     []byte
}

// NewWriter starts a container with the given 4-byte magic and format
// version.
func NewWriter(magic string, version uint16) *Writer {
	w := &Writer{magic: magic, version: version}
	w.buf = append(w.buf, magic...)
	w.buf = binary.BigEndian.AppendUint16(w.buf, version)
	return w
}

// Section appends one section. Payload bytes are copied into the
// container immediately; the caller may reuse the slice.
func (w *Writer) Section(id byte, payload []byte) {
	w.buf = append(w.buf, id)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(payload)))
	w.buf = append(w.buf, payload...)
	w.buf = binary.BigEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(payload))
}

// WriteTo writes the assembled container.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	n, err := out.Write(w.buf)
	return int64(n), err
}

// Bytes returns the assembled container.
func (w *Writer) Bytes() []byte { return w.buf }

// ReadSections reads a whole container from r, validates magic,
// version, lengths, and per-section CRCs, and returns the sections in
// file order. It never panics on malformed input and never allocates
// more than the input's actual size (plus the cap above) regardless of
// what the length prefixes claim.
func ReadSections(r io.Reader, magic string, maxVersion uint16) ([]Section, error) {
	sections, _, err := ReadSectionsVersioned(r, magic, maxVersion)
	return sections, err
}

// ReadSectionsVersioned is ReadSections but additionally returns the
// input's format version, for decoders that keep older layouts
// readable (the version is 0 on error).
func ReadSectionsVersioned(r io.Reader, magic string, maxVersion uint16) ([]Section, uint16, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxSnapshotBytes+1))
	if err != nil {
		return nil, 0, fmt.Errorf("snapshot: read: %w", err)
	}
	if len(data) > maxSnapshotBytes {
		return nil, 0, fmt.Errorf("%w: input exceeds %d bytes", ErrCorrupt, maxSnapshotBytes)
	}
	return DecodeSectionsVersioned(data, magic, maxVersion)
}

// DecodeSections is ReadSections over in-memory bytes.
func DecodeSections(data []byte, magic string, maxVersion uint16) ([]Section, error) {
	sections, _, err := DecodeSectionsVersioned(data, magic, maxVersion)
	return sections, err
}

// DecodeSectionsVersioned is ReadSectionsVersioned over in-memory
// bytes.
func DecodeSectionsVersioned(data []byte, magic string, maxVersion uint16) ([]Section, uint16, error) {
	if len(data) < len(magic)+2 {
		return nil, 0, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if string(data[:len(magic)]) != magic {
		return nil, 0, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:len(magic)])
	}
	data = data[len(magic):]
	version := binary.BigEndian.Uint16(data)
	if version > maxVersion {
		return nil, 0, fmt.Errorf("%w: got v%d, decoder understands <= v%d", ErrVersion, version, maxVersion)
	}
	data = data[2:]

	var sections []Section
	for len(data) > 0 {
		id := data[0]
		data = data[1:]
		n, sz := binary.Uvarint(data)
		if sz <= 0 {
			return nil, 0, fmt.Errorf("%w: section 0x%02x: bad length varint", ErrCorrupt, id)
		}
		data = data[sz:]
		if n > uint64(len(data)) {
			return nil, 0, fmt.Errorf("%w: section 0x%02x: length %d exceeds remaining %d bytes", ErrCorrupt, id, n, len(data))
		}
		payload := data[:n]
		data = data[n:]
		if len(data) < 4 {
			return nil, 0, fmt.Errorf("%w: section 0x%02x: truncated checksum", ErrCorrupt, id)
		}
		want := binary.BigEndian.Uint32(data)
		data = data[4:]
		if got := crc32.ChecksumIEEE(payload); got != want {
			return nil, 0, fmt.Errorf("%w: section 0x%02x: checksum mismatch (got %08x want %08x)", ErrCorrupt, id, got, want)
		}
		sections = append(sections, Section{ID: id, Payload: payload})
	}
	return sections, version, nil
}

// Enc builds a section payload. All integers are encoded little-endian
// fixed-width unless the method says uvarint; there is no map
// iteration anywhere, so identical call sequences yield identical
// bytes.
type Enc struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends 1 or 0.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U16 appends a fixed-width little-endian uint16.
func (e *Enc) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 appends a fixed-width little-endian uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a fixed-width little-endian uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a fixed-width little-endian int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64 as its IEEE-754 bits.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Uvarint appends a varint-encoded count or index.
func (e *Enc) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// String appends a uvarint length followed by the bytes.
func (e *Enc) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes appends a uvarint length followed by the bytes.
func (e *Enc) Blob(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Dec decodes a section payload written by Enc. It latches the first
// error: after a failed read every further read returns the zero value
// and Err() reports the failure, so decoders can be written as
// straight-line code with a single error check at the end. A reader
// that runs past the payload is an ErrCorrupt, never a panic.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec wraps a payload.
func NewDec(payload []byte) *Dec { return &Dec{buf: payload} }

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Rest returns how many bytes remain unread.
func (d *Dec) Rest() int { return len(d.buf) - d.off }

// Done returns ErrCorrupt if the payload was not fully consumed, or
// the latched error.
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes in payload", ErrCorrupt, len(d.buf)-d.off)
	}
	return nil
}

func (d *Dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s at offset %d", ErrCorrupt, what, d.off)
	}
}

func (d *Dec) take(n int, what string) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a byte and rejects values other than 0 and 1.
func (d *Dec) Bool() bool {
	v := d.U8()
	if v > 1 && d.err == nil {
		d.err = fmt.Errorf("%w: bool byte 0x%02x at offset %d", ErrCorrupt, v, d.off-1)
	}
	return v == 1
}

// U16 reads a fixed-width little-endian uint16.
func (d *Dec) U16() uint16 {
	b := d.take(2, "u16")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a fixed-width little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4, "u32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed-width little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8, "u64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a fixed-width little-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 reads a float64 from its IEEE-754 bits.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Uvarint reads a varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, sz := binary.Uvarint(d.buf[d.off:])
	if sz <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += sz
	return v
}

// Count reads a uvarint element count for elements of at least
// minElemSize bytes each and rejects counts that cannot fit in the
// remaining payload, so a fuzzed count cannot drive a huge
// pre-allocation.
func (d *Dec) Count(minElemSize int) int {
	v := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if minElemSize < 1 {
		minElemSize = 1
	}
	if v > uint64(d.Rest()/minElemSize) {
		d.err = fmt.Errorf("%w: count %d exceeds remaining payload (%d bytes)", ErrCorrupt, v, d.Rest())
		return 0
	}
	return int(v)
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := d.Count(1)
	return string(d.take(n, "string"))
}

// Blob reads a length-prefixed byte slice (aliasing the payload).
func (d *Dec) Blob() []byte {
	n := d.Count(1)
	return d.take(n, "blob")
}
