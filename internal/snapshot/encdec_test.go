package snapshot

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// TestEncDecRoundTrip drives every Enc method through the matching Dec
// method and requires exact value recovery plus full consumption.
func TestEncDecRoundTrip(t *testing.T) {
	var e Enc
	e.U8(0xab)
	e.Bool(true)
	e.Bool(false)
	e.U16(0xbeef)
	e.U32(0xdeadbeef)
	e.U64(0x0123456789abcdef)
	e.I64(-42)
	e.F64(math.Pi)
	e.F64(math.Inf(-1))
	e.Uvarint(0)
	e.Uvarint(1 << 40)
	e.String("hello")
	e.String("")
	e.Blob([]byte{1, 2, 3})
	e.Blob(nil)

	d := NewDec(e.Bytes())
	if got := d.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := d.U16(); got != 0xbeef {
		t.Errorf("U16 = %#x", got)
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 0x0123456789abcdef {
		t.Errorf("U64 = %#x", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := d.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 = %v, want -Inf", got)
	}
	if got := d.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := d.Uvarint(); got != 1<<40 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := d.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("String = %q, want empty", got)
	}
	if got := d.Blob(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Blob = %v", got)
	}
	if got := d.Blob(); len(got) != 0 {
		t.Errorf("empty Blob = %v", got)
	}
	if err := d.Done(); err != nil {
		t.Fatalf("Done after full read: %v", err)
	}
}

// TestDecTruncationLatches reads each scalar type off an empty payload
// and checks the decoder latches one ErrCorrupt and keeps returning
// zero values instead of panicking.
func TestDecTruncationLatches(t *testing.T) {
	for name, read := range map[string]func(*Dec){
		"u8":      func(d *Dec) { d.U8() },
		"bool":    func(d *Dec) { d.Bool() },
		"u16":     func(d *Dec) { d.U16() },
		"u32":     func(d *Dec) { d.U32() },
		"u64":     func(d *Dec) { d.U64() },
		"i64":     func(d *Dec) { d.I64() },
		"f64":     func(d *Dec) { d.F64() },
		"uvarint": func(d *Dec) { d.Uvarint() },
		"string":  func(d *Dec) { _ = d.String() },
		"blob":    func(d *Dec) { d.Blob() },
	} {
		d := NewDec(nil)
		read(d)
		if !errors.Is(d.Err(), ErrCorrupt) {
			t.Errorf("%s on empty payload: err = %v, want ErrCorrupt", name, d.Err())
		}
		// The error latches: further reads stay at zero, Done reports it.
		if v := d.U32(); v != 0 {
			t.Errorf("%s: read after latched error = %d, want 0", name, v)
		}
		if !errors.Is(d.Done(), ErrCorrupt) {
			t.Errorf("%s: Done = %v, want ErrCorrupt", name, d.Done())
		}
	}
}

// TestDecBoolRejectsJunk pins the strictness that makes Bool fields
// canonical: 2..255 are corrupt, not truthy.
func TestDecBoolRejectsJunk(t *testing.T) {
	d := NewDec([]byte{2})
	if d.Bool() {
		t.Error("Bool(0x02) returned true")
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Errorf("Bool(0x02) err = %v, want ErrCorrupt", d.Err())
	}
}

// TestWriterReadSections round-trips a container through the io.Writer
// / io.Reader surface (WriteTo + ReadSections), complementing the
// in-memory DecodeSections tests.
func TestWriterReadSections(t *testing.T) {
	w := NewWriter(EngineMagic, EngineVersion)
	w.Section(1, []byte("alpha"))
	w.Section(2, nil)
	var buf bytes.Buffer
	if n, err := w.WriteTo(&buf); err != nil || n != int64(buf.Len()) {
		t.Fatalf("WriteTo = (%d, %v), buffered %d", n, err, buf.Len())
	}
	secs, err := ReadSections(&buf, EngineMagic, EngineVersion)
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 2 || secs[0].ID != 1 || string(secs[0].Payload) != "alpha" ||
		secs[1].ID != 2 || len(secs[1].Payload) != 0 {
		t.Fatalf("sections = %+v", secs)
	}
}
