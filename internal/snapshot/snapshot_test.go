package snapshot

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func buildContainer() []byte {
	w := NewWriter(EngineMagic, 1)
	var e Enc
	e.U8(7)
	e.U64(1 << 40)
	e.String("hello")
	w.Section(1, e.Bytes())
	var e2 Enc
	e2.Uvarint(3)
	e2.F64(2.5)
	w.Section(2, e2.Bytes())
	return w.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := buildContainer()
	secs, err := ReadSections(bytes.NewReader(data), EngineMagic, 1)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(secs) != 2 || secs[0].ID != 1 || secs[1].ID != 2 {
		t.Fatalf("sections = %+v", secs)
	}
	d := NewDec(secs[0].Payload)
	if got := d.U8(); got != 7 {
		t.Errorf("u8 = %d", got)
	}
	if got := d.U64(); got != 1<<40 {
		t.Errorf("u64 = %d", got)
	}
	if got := d.String(); got != "hello" {
		t.Errorf("string = %q", got)
	}
	if err := d.Done(); err != nil {
		t.Errorf("done: %v", err)
	}
	d2 := NewDec(secs[1].Payload)
	if got := d2.Uvarint(); got != 3 {
		t.Errorf("uvarint = %d", got)
	}
	if got := d2.F64(); got != 2.5 {
		t.Errorf("f64 = %v", got)
	}
	if err := d2.Done(); err != nil {
		t.Errorf("done: %v", err)
	}
}

func TestDeterministicBytes(t *testing.T) {
	if !bytes.Equal(buildContainer(), buildContainer()) {
		t.Fatal("two identical encodes differ")
	}
}

func TestBadMagic(t *testing.T) {
	data := buildContainer()
	data[0] = 'X'
	if _, err := DecodeSections(data, EngineMagic, 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestFutureVersion(t *testing.T) {
	data := NewWriter(EngineMagic, 9).Bytes()
	if _, err := DecodeSections(data, EngineMagic, 1); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestTruncationAtEveryByte(t *testing.T) {
	data := buildContainer()
	// A cut exactly at a section boundary yields a valid, shorter
	// container (consumers reject missing sections themselves); every
	// other cut must fail at the container layer.
	boundaries := map[int]bool{len(EngineMagic) + 2: true}
	secs, err := DecodeSections(data, EngineMagic, 1)
	if err != nil {
		t.Fatal(err)
	}
	off := len(EngineMagic) + 2
	for _, s := range secs {
		var e Enc
		e.Uvarint(uint64(len(s.Payload)))
		off += 1 + len(e.Bytes()) + len(s.Payload) + 4
		boundaries[off] = true
	}
	for n := 0; n < len(data); n++ {
		got, err := DecodeSections(data[:n], EngineMagic, 1)
		if boundaries[n] {
			if err != nil {
				t.Fatalf("cut at boundary %d failed: %v", n, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("truncation at %d/%d decoded cleanly (%d sections)", n, len(data), len(got))
		}
	}
}

func TestFlippedCRC(t *testing.T) {
	data := buildContainer()
	data[len(data)-1] ^= 0xFF
	if _, err := DecodeSections(data, EngineMagic, 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestCorruptPayloadByte(t *testing.T) {
	data := buildContainer()
	// First payload byte lives right after magic+version+id+len varint.
	data[len(EngineMagic)+2+2] ^= 0x55
	if _, err := DecodeSections(data, EngineMagic, 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestOverlongSectionLength(t *testing.T) {
	w := NewWriter(EngineMagic, 1)
	buf := w.Bytes()
	buf = append(buf, 1)          // section id
	buf = append(buf, 0xFF, 0x7F) // claims 16383 payload bytes
	buf = append(buf, 1, 2, 3)
	if _, err := DecodeSections(buf, EngineMagic, 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestDecErrorLatching(t *testing.T) {
	d := NewDec([]byte{1})
	_ = d.U64() // fails: only 1 byte
	if d.Err() == nil {
		t.Fatal("no error after short read")
	}
	// Every further read stays failed and returns zero values.
	if got := d.U32(); got != 0 {
		t.Errorf("post-error u32 = %d", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("post-error string = %q", got)
	}
	if err := d.Done(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("done = %v, want ErrCorrupt", err)
	}
}

func TestDecTrailingBytes(t *testing.T) {
	d := NewDec([]byte{1, 2, 3})
	_ = d.U8()
	if err := d.Done(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("done = %v, want ErrCorrupt for trailing bytes", err)
	}
}

func TestCountGuardsAllocation(t *testing.T) {
	var e Enc
	e.Uvarint(math.MaxUint64 / 2)
	d := NewDec(e.Bytes())
	if n := d.Count(8); n != 0 || d.Err() == nil {
		t.Fatalf("count = %d err = %v; want rejection", n, d.Err())
	}
}

func TestBoolRejectsJunk(t *testing.T) {
	d := NewDec([]byte{2})
	_ = d.Bool()
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt for bool byte 2", d.Err())
	}
}

func TestWriterWriteTo(t *testing.T) {
	w := NewWriter(CheckpointMagic, CheckpointVersion)
	w.Section(9, []byte("payload"))
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	secs, err := ReadSections(&buf, CheckpointMagic, CheckpointVersion)
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 1 || secs[0].ID != 9 || string(secs[0].Payload) != "payload" {
		t.Fatalf("sections = %+v", secs)
	}
}

func TestReadSectionsIOError(t *testing.T) {
	r := io.MultiReader(bytes.NewReader([]byte(EngineMagic)), errReader{})
	if _, err := ReadSections(r, EngineMagic, 1); err == nil {
		t.Fatal("io error swallowed")
	}
}

type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, errors.New("boom") }
