package netutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParsePrefix(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"163.253.63.0/24", "163.253.63.0/24", false},
		{"163.253.63.63/24", "163.253.63.0/24", false}, // canonicalized
		{"0.0.0.0/0", "0.0.0.0/0", false},
		{"10.0.0.0/8", "10.0.0.0/8", false},
		{"1.2.3.4/32", "1.2.3.4/32", false},
		{"2001:db8::/32", "", true}, // IPv6 rejected
		{"nonsense", "", true},
		{"10.0.0.0/33", "", true},
	}
	for _, tt := range tests {
		got, err := ParsePrefix(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParsePrefix(%q) err=%v wantErr=%v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got.String() != tt.want {
			t.Errorf("ParsePrefix(%q) = %s, want %s", tt.in, got, tt.want)
		}
	}
}

func TestPrefixFromMasksBits(t *testing.T) {
	p := PrefixFrom(0x0a0b0c0d, 16)
	if p.String() != "10.11.0.0/16" {
		t.Errorf("PrefixFrom = %s, want 10.11.0.0/16", p)
	}
	if PrefixFrom(1, 40).Bits() != 32 {
		t.Error("bits should clamp to 32")
	}
	if PrefixFrom(1, -1).Bits() != 0 {
		t.Error("bits should clamp to 0")
	}
}

func TestContainsCovers(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	if !p.Contains(0x0a010203) {
		t.Error("10.1.0.0/16 should contain 10.1.2.3")
	}
	if p.Contains(0x0a020000) {
		t.Error("10.1.0.0/16 should not contain 10.2.0.0")
	}
	q := MustParsePrefix("10.1.2.0/24")
	if !p.Covers(q) {
		t.Error("10.1.0.0/16 should cover 10.1.2.0/24")
	}
	if q.Covers(p) {
		t.Error("10.1.2.0/24 should not cover 10.1.0.0/16")
	}
	if !p.Covers(p) {
		t.Error("a prefix covers itself")
	}
	if (Prefix{}).Covers(p) || p.Covers(Prefix{}) {
		t.Error("invalid prefixes cover nothing")
	}
}

func TestNumAddrsNthAddr(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/24")
	if p.NumAddrs() != 256 {
		t.Errorf("NumAddrs = %d, want 256", p.NumAddrs())
	}
	if AddrString(p.NthAddr(63)) != "192.0.2.63" {
		t.Errorf("NthAddr(63) = %s", AddrString(p.NthAddr(63)))
	}
	if p.NthAddr(256) != p.NthAddr(0) {
		t.Error("NthAddr should wrap modulo prefix size")
	}
	if (Prefix{}).NumAddrs() != 0 {
		t.Error("invalid prefix has no addresses")
	}
}

func TestExcludeCovered(t *testing.T) {
	ps := []Prefix{
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("10.1.0.0/16"), // covered by /8
		MustParsePrefix("10.1.2.0/24"), // covered by both
		MustParsePrefix("11.0.0.0/16"),
		MustParsePrefix("11.0.0.0/16"), // duplicate
		MustParsePrefix("12.0.0.0/16"),
		MustParsePrefix("12.1.0.0/16"),
	}
	got := ExcludeCovered(ps)
	want := []Prefix{
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("11.0.0.0/16"),
		MustParsePrefix("12.0.0.0/16"),
		MustParsePrefix("12.1.0.0/16"),
	}
	if len(got) != len(want) {
		t.Fatalf("ExcludeCovered = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("ExcludeCovered[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if ExcludeCovered(nil) != nil {
		t.Error("ExcludeCovered(nil) should be nil")
	}
}

func TestExcludeCoveredProperty(t *testing.T) {
	// Against a naive O(n^2) oracle on random prefix sets.
	rng := rand.New(rand.NewSource(42)) // #nosec test randomness
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		ps := make([]Prefix, n)
		for i := range ps {
			ps[i] = PrefixFrom(rng.Uint32(), 8+rng.Intn(17))
		}
		got := ExcludeCovered(ps)
		// Oracle: dedupe, then keep p iff no distinct q covers it.
		seen := map[Prefix]bool{}
		var uniq []Prefix
		for _, p := range ps {
			if !seen[p] {
				seen[p] = true
				uniq = append(uniq, p)
			}
		}
		var want []Prefix
		for _, p := range uniq {
			covered := false
			for _, q := range uniq {
				if q != p && q.Covers(p) {
					covered = true
					break
				}
			}
			if !covered {
				want = append(want, p)
			}
		}
		SortPrefixes(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d prefixes, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got[%d]=%s want %s", trial, i, got[i], want[i])
			}
		}
	}
}

func TestComparePrefixesTotalOrder(t *testing.T) {
	f := func(a1, a2 uint32, b1, b2 uint8) bool {
		p := PrefixFrom(a1, int(b1%33))
		q := PrefixFrom(a2, int(b2%33))
		c1, c2 := ComparePrefixes(p, q), ComparePrefixes(q, p)
		if p == q {
			return c1 == 0 && c2 == 0
		}
		return c1 == -c2 && c1 != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
