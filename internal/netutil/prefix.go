// Package netutil provides IPv4 prefix utilities for the reproduction:
// parsing, containment algebra, address enumeration, a longest-prefix-
// match trie, and the covered-prefix exclusion the paper applies when
// building its target list (§3.2: "We excluded 437 prefixes entirely
// covered by other prefixes").
package netutil

import (
	"fmt"
	"net/netip"
	"sort"
)

// Prefix is an IPv4 CIDR block. It wraps netip.Prefix but guarantees
// IPv4 and a masked (canonical) address, so values compare with ==.
type Prefix struct {
	p netip.Prefix
}

// ParsePrefix parses "a.b.c.d/len" into a canonical IPv4 Prefix.
func ParsePrefix(s string) (Prefix, error) {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		return Prefix{}, fmt.Errorf("netutil: %w", err)
	}
	if !p.Addr().Is4() {
		return Prefix{}, fmt.Errorf("netutil: %q is not IPv4", s)
	}
	return Prefix{p.Masked()}, nil
}

// MustParsePrefix is ParsePrefix but panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// PrefixFrom builds a canonical Prefix from a 32-bit address and
// prefix length. Bits outside the mask are cleared.
func PrefixFrom(addr uint32, bits int) Prefix {
	if bits < 0 {
		bits = 0
	}
	if bits > 32 {
		bits = 32
	}
	a := netip.AddrFrom4([4]byte{byte(addr >> 24), byte(addr >> 16), byte(addr >> 8), byte(addr)})
	return Prefix{netip.PrefixFrom(a, bits).Masked()}
}

// IsValid reports whether p is a real prefix (the zero Prefix is not).
func (p Prefix) IsValid() bool { return p.p.IsValid() }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return p.p.Bits() }

// Addr returns the network address as a 32-bit integer.
func (p Prefix) Addr() uint32 {
	b := p.p.Addr().As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// String returns canonical CIDR notation.
func (p Prefix) String() string {
	if !p.p.IsValid() {
		return "invalid"
	}
	return p.p.String()
}

// Contains reports whether address a (32-bit) is inside p.
func (p Prefix) Contains(a uint32) bool {
	if !p.p.IsValid() {
		return false
	}
	return p.p.Contains(netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}))
}

// Covers reports whether p covers q: every address of q is in p.
// A prefix covers itself.
func (p Prefix) Covers(q Prefix) bool {
	if !p.p.IsValid() || !q.p.IsValid() {
		return false
	}
	return p.Bits() <= q.Bits() && p.Contains(q.Addr())
}

// NumAddrs returns the number of addresses in the prefix.
func (p Prefix) NumAddrs() uint64 {
	if !p.p.IsValid() {
		return 0
	}
	return uint64(1) << (32 - uint(p.Bits()))
}

// NthAddr returns the n-th address within the prefix (0 is the network
// address). n is taken modulo the prefix size, so callers can index
// with arbitrary offsets.
func (p Prefix) NthAddr(n uint64) uint32 {
	size := p.NumAddrs()
	if size == 0 {
		return 0
	}
	return p.Addr() + uint32(n%size)
}

// AddrString formats a 32-bit address in dotted quad.
func AddrString(a uint32) string {
	return netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}).String()
}

// ComparePrefixes orders prefixes by network address, then by length
// (shorter first). Used to produce deterministic output everywhere.
func ComparePrefixes(a, b Prefix) int {
	switch {
	case a.Addr() < b.Addr():
		return -1
	case a.Addr() > b.Addr():
		return 1
	case a.Bits() < b.Bits():
		return -1
	case a.Bits() > b.Bits():
		return 1
	}
	return 0
}

// SortPrefixes sorts prefixes in the canonical order.
func SortPrefixes(ps []Prefix) {
	sort.Slice(ps, func(i, j int) bool { return ComparePrefixes(ps[i], ps[j]) < 0 })
}

// ExcludeCovered removes from ps every prefix that is entirely covered
// by a *different* prefix in ps, reproducing the paper's target-list
// construction. The result is in canonical order. Duplicates collapse
// to a single instance.
func ExcludeCovered(ps []Prefix) []Prefix {
	if len(ps) == 0 {
		return nil
	}
	sorted := make([]Prefix, len(ps))
	copy(sorted, ps)
	SortPrefixes(sorted)
	// Deduplicate.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	// After sorting, any cover of p precedes p. Maintain a stack of
	// covering candidates.
	var out []Prefix
	var stack []Prefix
	for _, p := range uniq {
		for len(stack) > 0 && !stack[len(stack)-1].Covers(p) {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			out = append(out, p)
		}
		stack = append(stack, p)
	}
	return out
}
