package netutil

// Trie is a binary radix trie mapping IPv4 prefixes to values, with
// longest-prefix-match lookup. Routers in the data-plane simulator use
// it to resolve a destination address to the most specific route, the
// mechanism behind the paper's "import only a default route so R&E
// routes are the most specific" alternative (§1).
//
// The zero value is an empty trie ready to use. Trie is not safe for
// concurrent mutation.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// Insert associates v with prefix p, replacing any existing value.
func (t *Trie[V]) Insert(p Prefix, v V) {
	if !p.IsValid() {
		return
	}
	if t.root == nil {
		t.root = &trieNode[V]{}
	}
	n := t.root
	addr := p.Addr()
	for depth := 0; depth < p.Bits(); depth++ {
		bit := (addr >> (31 - uint(depth))) & 1
		if n.child[bit] == nil {
			n.child[bit] = &trieNode[V]{}
		}
		n = n.child[bit]
	}
	if !n.set {
		t.size++
	}
	n.val, n.set = v, true
}

// Delete removes the value at exactly prefix p (no effect if absent).
// Interior nodes are left in place; the trie is small relative to the
// simulation and reclaiming them is not worth the complexity.
func (t *Trie[V]) Delete(p Prefix) {
	if t.root == nil || !p.IsValid() {
		return
	}
	n := t.root
	addr := p.Addr()
	for depth := 0; depth < p.Bits(); depth++ {
		bit := (addr >> (31 - uint(depth))) & 1
		if n.child[bit] == nil {
			return
		}
		n = n.child[bit]
	}
	if n.set {
		t.size--
		var zero V
		n.val, n.set = zero, false
	}
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// Get returns the value stored at exactly prefix p.
func (t *Trie[V]) Get(p Prefix) (V, bool) {
	var zero V
	if t.root == nil || !p.IsValid() {
		return zero, false
	}
	n := t.root
	addr := p.Addr()
	for depth := 0; depth < p.Bits(); depth++ {
		bit := (addr >> (31 - uint(depth))) & 1
		if n.child[bit] == nil {
			return zero, false
		}
		n = n.child[bit]
	}
	if !n.set {
		return zero, false
	}
	return n.val, true
}

// Lookup returns the value of the longest prefix containing addr.
func (t *Trie[V]) Lookup(addr uint32) (V, bool) {
	var best V
	found := false
	if t.root == nil {
		return best, false
	}
	n := t.root
	if n.set { // a 0.0.0.0/0 default route
		best, found = n.val, true
	}
	for depth := 0; depth < 32 && n != nil; depth++ {
		bit := (addr >> (31 - uint(depth))) & 1
		n = n.child[bit]
		if n != nil && n.set {
			best, found = n.val, true
		}
	}
	return best, found
}

// LookupPrefix is Lookup but also reports the matched prefix.
func (t *Trie[V]) LookupPrefix(addr uint32) (Prefix, V, bool) {
	var bestV V
	var bestP Prefix
	found := false
	if t.root == nil {
		return bestP, bestV, false
	}
	n := t.root
	if n.set {
		bestP, bestV, found = PrefixFrom(0, 0), n.val, true
	}
	for depth := 0; depth < 32 && n != nil; depth++ {
		bit := (addr >> (31 - uint(depth))) & 1
		n = n.child[bit]
		if n != nil && n.set {
			bestP, bestV, found = PrefixFrom(addr, depth+1), n.val, true
		}
	}
	return bestP, bestV, found
}

// Covering visits every stored prefix that covers p (including p
// itself if present), shortest first. Visiting stops if fn returns
// false. RPKI origin validation uses this to find all candidate ROAs.
func (t *Trie[V]) Covering(p Prefix, fn func(Prefix, V) bool) {
	if t.root == nil || !p.IsValid() {
		return
	}
	n := t.root
	addr := p.Addr()
	if n.set {
		if !fn(PrefixFrom(0, 0), n.val) {
			return
		}
	}
	for depth := 0; depth < p.Bits() && n != nil; depth++ {
		bit := (addr >> (31 - uint(depth))) & 1
		n = n.child[bit]
		if n != nil && n.set {
			if !fn(PrefixFrom(addr, depth+1), n.val) {
				return
			}
		}
	}
}

// Walk visits every stored prefix/value pair in canonical order
// (network address, then length). Walking stops if fn returns false.
func (t *Trie[V]) Walk(fn func(Prefix, V) bool) {
	if t.root == nil {
		return
	}
	walkNode(t.root, 0, 0, fn)
}

func walkNode[V any](n *trieNode[V], addr uint32, depth int, fn func(Prefix, V) bool) bool {
	if n.set {
		if !fn(PrefixFrom(addr, depth), n.val) {
			return false
		}
	}
	if depth == 32 {
		return true
	}
	if c := n.child[0]; c != nil {
		if !walkNode(c, addr, depth+1, fn) {
			return false
		}
	}
	if c := n.child[1]; c != nil {
		if !walkNode(c, addr|1<<(31-uint(depth)), depth+1, fn) {
			return false
		}
	}
	return true
}
