package netutil

import (
	"math/rand"
	"testing"
)

func TestTrieBasic(t *testing.T) {
	var tr Trie[string]
	if _, ok := tr.Lookup(0x01020304); ok {
		t.Error("empty trie should not match")
	}
	tr.Insert(MustParsePrefix("10.0.0.0/8"), "eight")
	tr.Insert(MustParsePrefix("10.1.0.0/16"), "sixteen")
	tr.Insert(MustParsePrefix("10.1.2.0/24"), "twentyfour")
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
	tests := []struct {
		addr uint32
		want string
		ok   bool
	}{
		{0x0a010203, "twentyfour", true}, // 10.1.2.3
		{0x0a010300, "sixteen", true},    // 10.1.3.0
		{0x0a020000, "eight", true},      // 10.2.0.0
		{0x0b000000, "", false},          // 11.0.0.0
	}
	for _, tt := range tests {
		got, ok := tr.Lookup(tt.addr)
		if ok != tt.ok || got != tt.want {
			t.Errorf("Lookup(%s) = %q,%v want %q,%v", AddrString(tt.addr), got, ok, tt.want, tt.ok)
		}
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("0.0.0.0/0"), "default")
	tr.Insert(MustParsePrefix("10.0.0.0/8"), "ten")
	if v, ok := tr.Lookup(0xc0a80101); !ok || v != "default" {
		t.Errorf("Lookup(192.168.1.1) = %q,%v want default", v, ok)
	}
	if v, ok := tr.Lookup(0x0a000001); !ok || v != "ten" {
		t.Errorf("Lookup(10.0.0.1) = %q,%v want ten", v, ok)
	}
	p, v, ok := tr.LookupPrefix(0xc0a80101)
	if !ok || v != "default" || p.String() != "0.0.0.0/0" {
		t.Errorf("LookupPrefix = %s,%q,%v", p, v, ok)
	}
}

func TestTrieInsertReplaceDelete(t *testing.T) {
	var tr Trie[int]
	p := MustParsePrefix("192.0.2.0/24")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Errorf("Len after replace = %d, want 1", tr.Len())
	}
	if v, _ := tr.Get(p); v != 2 {
		t.Errorf("Get = %d, want 2", v)
	}
	tr.Delete(p)
	if tr.Len() != 0 {
		t.Errorf("Len after delete = %d, want 0", tr.Len())
	}
	if _, ok := tr.Get(p); ok {
		t.Error("Get after delete should miss")
	}
	// Deleting an absent prefix is a no-op.
	tr.Delete(MustParsePrefix("10.0.0.0/8"))
	if tr.Len() != 0 {
		t.Error("Delete of absent prefix changed Len")
	}
}

func TestTrieGetExact(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 8)
	if _, ok := tr.Get(MustParsePrefix("10.0.0.0/16")); ok {
		t.Error("Get should be exact-match only")
	}
}

func TestTrieWalkOrder(t *testing.T) {
	var tr Trie[int]
	ins := []string{"10.1.2.0/24", "0.0.0.0/0", "10.0.0.0/8", "192.0.2.0/24", "10.1.0.0/16"}
	for i, s := range ins {
		tr.Insert(MustParsePrefix(s), i)
	}
	var got []string
	tr.Walk(func(p Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	want := []string{"0.0.0.0/0", "10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "192.0.2.0/24"}
	if len(got) != len(want) {
		t.Fatalf("Walk visited %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("Walk[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	// Early termination.
	count := 0
	tr.Walk(func(Prefix, int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("Walk early-stop visited %d, want 2", count)
	}
}

// TestTrieAgainstNaive cross-checks longest-prefix match against a
// linear scan over random route tables.
func TestTrieAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99)) // #nosec test randomness
	for trial := 0; trial < 20; trial++ {
		var tr Trie[int]
		n := 1 + rng.Intn(200)
		prefixes := make([]Prefix, 0, n)
		for i := 0; i < n; i++ {
			p := PrefixFrom(rng.Uint32(), rng.Intn(33))
			prefixes = append(prefixes, p)
			tr.Insert(p, i)
		}
		for q := 0; q < 200; q++ {
			addr := rng.Uint32()
			// Naive: longest matching prefix, latest insert wins ties.
			bestLen, bestVal, found := -1, 0, false
			for i, p := range prefixes {
				if p.Contains(addr) && p.Bits() >= bestLen {
					bestLen, bestVal, found = p.Bits(), i, true
				}
			}
			got, ok := tr.Lookup(addr)
			if ok != found {
				t.Fatalf("trial %d: Lookup(%s) ok=%v want %v", trial, AddrString(addr), ok, found)
			}
			if found && got != bestVal {
				// The trie stores one value per prefix; the naive scan
				// must agree once duplicates collapse to the last value.
				if prefixes[got] != prefixes[bestVal] || prefixes[got].Bits() != bestLen {
					t.Fatalf("trial %d: Lookup(%s) = %d (%s), naive %d (%s)",
						trial, AddrString(addr), got, prefixes[got], bestVal, prefixes[bestVal])
				}
			}
		}
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	var tr Trie[int]
	rng := rand.New(rand.NewSource(1)) // #nosec test randomness
	for i := 0; i < 20000; i++ {
		tr.Insert(PrefixFrom(rng.Uint32(), 16+rng.Intn(9)), i)
	}
	addrs := make([]uint32, 1024)
	for i := range addrs {
		addrs[i] = rng.Uint32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i&1023])
	}
}

func TestTrieCovering(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("0.0.0.0/0"), "default")
	tr.Insert(MustParsePrefix("10.0.0.0/8"), "eight")
	tr.Insert(MustParsePrefix("10.1.0.0/16"), "sixteen")
	tr.Insert(MustParsePrefix("10.1.2.0/24"), "twentyfour")
	tr.Insert(MustParsePrefix("192.0.2.0/24"), "other")

	var got []string
	tr.Covering(MustParsePrefix("10.1.2.0/24"), func(_ Prefix, v string) bool {
		got = append(got, v)
		return true
	})
	want := []string{"default", "eight", "sixteen", "twentyfour"}
	if len(got) != len(want) {
		t.Fatalf("Covering = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Covering[%d] = %q, want %q (shortest-first order)", i, got[i], want[i])
		}
	}
	// Early stop.
	n := 0
	tr.Covering(MustParsePrefix("10.1.2.0/24"), func(Prefix, string) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
	// A sibling prefix is not covered by the /16 or /24.
	got = nil
	tr.Covering(MustParsePrefix("10.2.0.0/16"), func(_ Prefix, v string) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 2 || got[0] != "default" || got[1] != "eight" {
		t.Errorf("Covering sibling = %v", got)
	}
	// Invalid prefix and empty trie are no-ops.
	tr.Covering(Prefix{}, func(Prefix, string) bool { t.Fatal("visited"); return true })
	var empty Trie[int]
	empty.Covering(MustParsePrefix("10.0.0.0/8"), func(Prefix, int) bool { t.Fatal("visited"); return true })
}

func TestTrieCoveringAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(321)) // #nosec test randomness
	for trial := 0; trial < 10; trial++ {
		var tr Trie[int]
		var prefixes []Prefix
		for i := 0; i < 100; i++ {
			p := PrefixFrom(rng.Uint32(), rng.Intn(33))
			tr.Insert(p, i)
			prefixes = append(prefixes, p)
		}
		for q := 0; q < 50; q++ {
			target := PrefixFrom(rng.Uint32(), rng.Intn(33))
			gotSet := map[Prefix]bool{}
			tr.Covering(target, func(p Prefix, _ int) bool {
				gotSet[p] = true
				return true
			})
			wantSet := map[Prefix]bool{}
			for _, p := range prefixes {
				if p.Covers(target) {
					wantSet[p] = true
				}
			}
			if len(gotSet) != len(wantSet) {
				t.Fatalf("trial %d target %s: got %d covering, want %d", trial, target, len(gotSet), len(wantSet))
			}
			for p := range wantSet {
				if !gotSet[p] {
					t.Fatalf("trial %d: missing covering prefix %s for %s", trial, p, target)
				}
			}
		}
	}
}
