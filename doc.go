// Package repro is a full reproduction of "R&E Routing Policy:
// Inference and Implication" (Luckie et al., IMC 2025): a BGP policy
// simulator, a synthetic R&E ecosystem with ground-truth route
// preference policies, the paper's active-probing inference method,
// and a benchmark harness that regenerates every table and figure of
// the paper's evaluation.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go print each table/figure;
// cmd/resurvey runs the whole study at paper scale.
package repro
