// Survey is a compact end-to-end run of the paper's method against
// the public API: build the ecosystem, find probe seeds, run both
// experiments, print the headline inference table, and score the
// inferences against the generator's installed ground truth.
//
// This is the example to start from when adapting the library to a
// different measurement design.
package main

import (
	"fmt"
	"sort"

	"repro/internal/asn"
	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	opts := core.SmallSurveyOptions()
	opts.Topology.Seed = 7

	fmt.Println("building the R&E ecosystem and selecting probe seeds...")
	s := core.NewSurvey(opts)
	fmt.Printf("  %d prefixes announced, %d responsive with up to 3 targets each\n\n",
		s.Sel.Stats.Prefixes, s.Sel.Stats.Responsive)

	fmt.Println("running the SURF (May) and Internet2 (June) experiments...")
	s.RunBoth()

	fmt.Println()
	fmt.Println(core.Summarize(s.Eco, s.Internet2).Table())

	// The payoff: how often does the data-plane inference recover the
	// policy the generator installed?
	v := core.Validate(s.Eco, s.Internet2)
	fmt.Println(v.Table())

	// And the per-AS view a researcher would consume.
	byAS := core.InferencesByAS(s.Eco, s.Internet2)
	var equal []asn.AS
	for as, inf := range byAS {
		if inf.EqualLocalPref() {
			equal = append(equal, as)
		}
	}
	sort.Slice(equal, func(i, j int) bool { return equal[i] < equal[j] })
	for i, as := range equal {
		if i == 5 {
			break
		}
		info := s.Eco.AS(as)
		fmt.Printf("AS %v (%s, %s): inferred equal localpref on R&E and commodity routes\n",
			as, info.Name, info.Region)
	}
	fmt.Printf("... %d ASes total inferred to tie-break on AS path length (%s of %d classified)\n",
		len(equal), report.Pct(len(equal), len(byAS)), len(byAS))

	// Per-prefix detail for one switching prefix.
	for p, pr := range s.Internet2.PerPrefix {
		if pr.Inference != core.InfSwitchToRE {
			continue
		}
		pi := s.Eco.PrefixInfoFor(p)
		fmt.Printf("\nexample switching prefix %s (origin %v, %s class):\n  ",
			p, pi.Origin, pi.NeighborClass)
		for i, obs := range pr.Seq {
			fmt.Printf("%s=%s ", core.Schedule()[i].Label(), obs)
		}
		fmt.Printf("\n  switched at configuration %s\n",
			core.Schedule()[core.SwitchConfig(pr.Seq)].Label())
		break
	}
}
