// Peerpref demonstrates the paper's §5 generalization (Figure 6):
// using the same method to detect whether ASes assign equal localpref
// to PEER and PROVIDER routes. A measurement host multi-homes to a
// large IXP route server and to a Tier-1 transit provider; ASes
// connected to the IXP (like Alpha) receive the measurement prefix
// both as a peer route (via the IXP) and as a provider route (via
// their transit), and the interface their responses arrive on, as
// prepends vary, reveals their relative preference.
package main

import (
	"fmt"

	"repro/internal/asn"
	"repro/internal/bgp"
	"repro/internal/netutil"
)

const (
	measIXP    = bgp.RouterID(1) // measurement origin announcing via the IXP
	measTelia  = bgp.RouterID(2) // measurement origin announcing via the Tier-1
	tier1      = bgp.RouterID(3) // Arelion-like transit (AS 1299)
	alpha      = bgp.RouterID(4) // IXP member with equal localpref
	beta       = bgp.RouterID(5) // IXP member preferring peers
	gamma      = bgp.RouterID(6) // IXP member preferring its provider
	measPrefix = "192.0.2.0/24"
)

// ixpPeer wires an IXP bilateral session (peer class) from the
// measurement origin to a member, with the member's localpref.
func ixpPeer(net *bgp.Network, member bgp.RouterID, lpAtMember uint32) {
	net.Connect(measIXP, member,
		bgp.PeerConfig{ClassifyAs: bgp.ClassPeer, ImportLocalPref: bgp.LocalPrefPeer, ExportAllow: bgp.GaoRexfordExport(bgp.ClassPeer)},
		bgp.PeerConfig{ClassifyAs: bgp.ClassPeer, ImportLocalPref: lpAtMember, ExportAllow: bgp.GaoRexfordExport(bgp.ClassPeer)})
}

func main() {
	net := bgp.NewNetwork()
	net.AddSpeaker(measIXP, 65000, "meas-ixp")
	net.AddSpeaker(measTelia, 65001, "meas-tier1") // second origin of the same operator
	net.AddSpeaker(tier1, 1299, "Tier1")
	net.AddSpeaker(alpha, 64501, "Alpha")
	net.AddSpeaker(beta, 64502, "Beta")
	net.AddSpeaker(gamma, 64503, "Gamma")

	// The Tier-1 origin is the Tier-1's customer; members buy transit
	// from the Tier-1 (provider sessions).
	cust := func(provider, c bgp.RouterID, lpAtCust uint32) {
		net.Connect(provider, c,
			bgp.PeerConfig{ClassifyAs: bgp.ClassCustomer, ImportLocalPref: bgp.LocalPrefCustomer, ExportAllow: bgp.GaoRexfordExport(bgp.ClassCustomer)},
			bgp.PeerConfig{ClassifyAs: bgp.ClassProvider, ImportLocalPref: lpAtCust, ExportAllow: bgp.GaoRexfordExport(bgp.ClassProvider)})
	}
	cust(tier1, measTelia, bgp.LocalPrefProvider)

	// Alpha: equal localpref for peer and provider routes (the
	// population the method can newly expose).
	ixpPeer(net, alpha, 150)
	cust(tier1, alpha, 150)
	// Beta: conventional Gao-Rexford — peers above providers.
	ixpPeer(net, beta, bgp.LocalPrefPeer)
	cust(tier1, beta, bgp.LocalPrefProvider)
	// Gamma: prefers its provider (e.g. a paid premium path).
	ixpPeer(net, gamma, bgp.LocalPrefPeer)
	cust(tier1, gamma, 250)

	prefix := netutil.MustParsePrefix(measPrefix)
	net.Originate(measIXP, prefix)
	net.Originate(measTelia, prefix)
	net.RunToQuiescence()

	fmt.Println("=== Figure 6: inferring peer-vs-provider preference at an IXP ===")
	fmt.Println()
	fmt.Println("The measurement prefix is announced twice: across the IXP fabric")
	fmt.Println("(peer route, path length 1) and via the Tier-1 (provider route,")
	fmt.Println("path length 2). Responses arriving on the IXP interface mean the")
	fmt.Println("member selected the peer route.")
	fmt.Println()

	members := []struct {
		id    bgp.RouterID
		truth string
	}{
		{alpha, "equal localpref (ties break on AS path length)"},
		{beta, "prefers peer routes"},
		{gamma, "prefers provider routes"},
	}

	// Sweep prepends on the IXP announcement: 0..3 extra copies.
	fmt.Printf("%-6s", "member")
	for p := 0; p <= 3; p++ {
		fmt.Printf("  ixp+%d", p)
	}
	fmt.Println("  ground truth")
	for _, m := range members {
		sp := net.Speaker(m.id)
		fmt.Printf("%-6s", sp.Name)
		for p := 0; p <= 3; p++ {
			net.SetPrefixPrepend(measIXP, m.id, prefix, p)
			net.RunToQuiescence()
			best := sp.Best(prefix)
			via := "ixp "
			if best.Path.First() != 65000 || best.Class == bgp.ClassProvider {
				via = "t1  "
			}
			if best.Class == bgp.ClassPeer {
				via = "ixp "
			}
			fmt.Printf("  %s ", via)
		}
		net.SetPrefixPrepend(measIXP, m.id, prefix, 0)
		net.RunToQuiescence()
		fmt.Printf("  %s\n", m.truth)
	}
	fmt.Println()
	fmt.Println("Alpha switches from the IXP to the Tier-1 interface once the peer")
	fmt.Println("path grows longer: the equal-localpref signature. Beta and Gamma")
	fmt.Println("never move — their localpref dominates, exactly like the R&E case.")

	// Reproduce asn doc note: prepends visible in Alpha's table.
	alphaBest := net.Speaker(alpha).AdjIn(prefix, measIXP)
	fmt.Printf("\nAlpha's peer route at rest: %s (origin %s)\n",
		alphaBest.Path, asn.AS(65000))
}
