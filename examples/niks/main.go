// Niks reproduces Figure 4 and the Table 2 case study: NIKS (AS 3267,
// a Russian R&E transit) assigns a higher localpref to GEANT than to
// NORDUnet, and gives NORDUnet the same localpref as its commodity
// provider Arelion. During the SURF experiment the measurement route
// arrives via GEANT and always wins; during the Internet2 experiment
// it arrives via NORDUnet, ties with Arelion on localpref, and AS path
// length decides — so NIKS's customers appear "Always R&E" in May and
// "Switch to R&E" in June.
package main

import (
	"fmt"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/topo"
)

func main() {
	eco := topo.Build(topo.SmallConfig())
	net := eco.Net
	meas := eco.MeasPrefix

	niks := net.Speaker(eco.NIKS.Router)
	fmt.Println("=== Figure 4: NIKS's per-neighbor localpref configuration ===")
	for _, nb := range []struct {
		name string
		id   bgp.RouterID
	}{
		{"GEANT", eco.GEANT.Router},
		{"NORDUnet", eco.NORDUnet.Router},
		{"Arelion", eco.AS(1299).Router},
	} {
		pc := niks.Peer(nb.id)
		fmt.Printf("  session to %-9s localpref %d\n", nb.name, pc.ImportLocalPref)
	}
	fmt.Println()

	describe := func(label string) {
		best := niks.Best(meas)
		if best == nil {
			fmt.Printf("%s: NIKS has no route\n", label)
			return
		}
		via := eco.ByRouter(best.From)
		fmt.Printf("%s: NIKS selects via %s — path %s (localpref %d)\n",
			label, via.Name, best.Path, best.LocalPref)
	}

	// --- SURF experiment: R&E origin 1125 behind SURF --------------
	fmt.Println("--- SURF experiment (May): origin AS 1125 via SURF ---")
	net.Originate(eco.MeasCommodity.Router, meas)
	net.Originate(eco.MeasSURF.Router, meas)
	net.RunToQuiescence()
	describe("at 0-0")
	for _, cfg := range core.Schedule() {
		for _, nb := range net.Speaker(eco.MeasSURF.Router).Peers() {
			net.SetPrefixPrepend(eco.MeasSURF.Router, nb, meas, cfg.RE)
		}
		for _, nb := range net.Speaker(eco.MeasCommodity.Router).Peers() {
			net.SetPrefixPrepend(eco.MeasCommodity.Router, nb, meas, cfg.Commodity)
		}
		net.RunToQuiescence()
		best := niks.Best(meas)
		via := eco.ByRouter(best.From)
		fmt.Printf("  config %s -> via %s\n", cfg.Label(), via.Name)
	}
	fmt.Println("  (GEANT's higher localpref wins at every configuration)")
	fmt.Println()

	// --- Internet2 experiment: origin 11537 ------------------------
	fmt.Println("--- Internet2 experiment (June): origin AS 11537 ---")
	net.WithdrawOrigination(eco.MeasSURF.Router, meas)
	net.Originate(eco.Internet2.Router, meas)
	net.RunToQuiescence()
	for _, cfg := range core.Schedule() {
		for _, nb := range net.Speaker(eco.Internet2.Router).Peers() {
			net.SetPrefixPrepend(eco.Internet2.Router, nb, meas, cfg.RE)
		}
		for _, nb := range net.Speaker(eco.MeasCommodity.Router).Peers() {
			net.SetPrefixPrepend(eco.MeasCommodity.Router, nb, meas, cfg.Commodity)
		}
		net.RunToQuiescence()
		best := niks.Best(meas)
		via := eco.ByRouter(best.From)
		fmt.Printf("  config %s -> via %-9s (path length %d)\n", cfg.Label(), via.Name, best.Path.Len())
	}
	fmt.Println()
	fmt.Println("GEANT never exports the Internet2-origin route to NIKS (ordinary")
	fmt.Println("peering), so NORDUnet ties with Arelion on localpref and AS path")
	fmt.Println("length decides: NIKS's customers switch from commodity to R&E as")
	fmt.Println("commodity prepends grow — the 161-prefix difference of Table 2.")
}
