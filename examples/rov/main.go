// Rov reproduces the passive-VP methodology lineage the paper builds
// on (§2.3): measuring RPKI route origin validation from the data
// plane, Cartwright-Cox style. A measurement prefix is announced with
// an RPKI-INVALID origin; responsive systems ("passive VPs") that stop
// answering probes sourced from that prefix are behind ROV-enforcing
// paths.
//
// The example also demonstrates the §2.3 criticism the paper cites:
// an AS can appear ROV-protected merely because an AS on its return
// path filters — drop-invalid at a transit shields (and mislabels)
// every customer behind it.
package main

import (
	"fmt"

	"repro/internal/asn"
	"repro/internal/bgp"
	"repro/internal/netutil"
	"repro/internal/rpki"
)

const (
	measValid   = bgp.RouterID(1) // legitimate origin, AS 64500
	measInvalid = bgp.RouterID(2) // RPKI-invalid origin, AS 64666
	transitROV  = bgp.RouterID(3) // transit deploying drop-invalid
	transitNone = bgp.RouterID(4) // transit without ROV
	edgeROV     = bgp.RouterID(5) // edge deploying ROV itself
	edgeBehind  = bgp.RouterID(6) // edge behind the ROV transit (no ROV)
	edgeOpen    = bgp.RouterID(7) // edge with no ROV anywhere
)

func main() {
	prefix := netutil.MustParsePrefix("203.0.113.0/24")
	table := rpki.NewTable()
	table.Add(rpki.ROA{Prefix: prefix, MaxLength: 24, Origin: 64500})

	net := bgp.NewNetwork()
	net.AddSpeaker(measValid, 64500, "valid-origin")
	net.AddSpeaker(measInvalid, 64666, "invalid-origin")
	net.AddSpeaker(transitROV, 64701, "transit-rov")
	net.AddSpeaker(transitNone, 64702, "transit-plain")
	net.AddSpeaker(edgeROV, 64801, "edge-rov")
	net.AddSpeaker(edgeBehind, 64802, "edge-behind-rov")
	net.AddSpeaker(edgeOpen, 64803, "edge-open")

	cust := func(provider, c bgp.RouterID, deny func(*bgp.Route) bool) {
		provCfg := bgp.PeerConfig{ClassifyAs: bgp.ClassCustomer, ImportLocalPref: bgp.LocalPrefCustomer, ExportAllow: bgp.GaoRexfordExport(bgp.ClassCustomer)}
		custCfg := bgp.PeerConfig{ClassifyAs: bgp.ClassProvider, ImportLocalPref: bgp.LocalPrefProvider, ExportAllow: bgp.GaoRexfordExport(bgp.ClassProvider), ImportDeny: deny}
		net.Connect(provider, c, provCfg, custCfg)
	}
	peer := func(a, b bgp.RouterID, denyAtA, denyAtB func(*bgp.Route) bool) {
		mk := func(deny func(*bgp.Route) bool) bgp.PeerConfig {
			return bgp.PeerConfig{ClassifyAs: bgp.ClassPeer, ImportLocalPref: bgp.LocalPrefPeer, ExportAllow: bgp.GaoRexfordExport(bgp.ClassPeer), ImportDeny: deny}
		}
		net.Connect(a, b, mk(denyAtA), mk(denyAtB))
	}

	drop := table.DropInvalid()
	// Both origins are customers of both transits; the ROV transit
	// drops invalids at import.
	cust(transitROV, measValid, nil)
	net.Speaker(transitROV).Peer(measValid).ImportDeny = drop
	cust(transitROV, measInvalid, nil)
	net.Speaker(transitROV).Peer(measInvalid).ImportDeny = drop
	cust(transitNone, measValid, nil)
	cust(transitNone, measInvalid, nil)
	peer(transitROV, transitNone, drop, nil)
	// Edges: one enforcing itself (under the plain transit), one
	// behind the ROV transit without enforcing, one fully open.
	cust(transitNone, edgeROV, drop)
	cust(transitROV, edgeBehind, nil)
	cust(transitNone, edgeOpen, nil)

	fmt.Println("=== Passive-VP ROV measurement (the §2.3 methodology) ===")
	fmt.Println()

	// Phase 1: valid announcement — every edge must reach it.
	net.Originate(measValid, prefix)
	net.RunToQuiescence()
	fmt.Println("RPKI-valid announcement (origin AS 64500):")
	report(net, prefix)

	// Phase 2: swap to the invalid origin, as the ROV studies do.
	net.WithdrawOrigination(measValid, prefix)
	net.Originate(measInvalid, prefix)
	net.RunToQuiescence()
	fmt.Println("\nRPKI-invalid announcement (origin AS 64666):")
	report(net, prefix)

	fmt.Println(`
Interpretation:
  edge-rov        unreachable: deploys drop-invalid itself.
  edge-behind-rov unreachable: deploys nothing — its transit filters.
                  A passive-VP study credits it with ROV it never
                  deployed (the criticism §2.3 records).
  edge-open       reachable: no ROV anywhere on its path.`)
}

func report(net *bgp.Network, prefix netutil.Prefix) {
	for _, e := range []struct {
		id   bgp.RouterID
		name string
	}{{edgeROV, "edge-rov"}, {edgeBehind, "edge-behind-rov"}, {edgeOpen, "edge-open"}} {
		best := net.Speaker(e.id).Best(prefix)
		if best == nil {
			fmt.Printf("  %-16s unreachable (no route back to the measurement prefix)\n", e.name)
			continue
		}
		fmt.Printf("  %-16s reachable via path %s (origin %s)\n", e.name, best.Path, asn.AS(best.Path.Origin()))
	}
}
