// Poison demonstrates AS-path poisoning (Colitti et al., §2.2 of the
// paper): an origin inserts a target AS into its own announcement so
// that the target's loop detection discards the route, steering
// traffic away from it and revealing alternate paths — the active
// technique the route-preference literature used before the paper's
// gentler prepending approach.
package main

import (
	"fmt"

	"repro/internal/asn"
	"repro/internal/bgp"
	"repro/internal/netutil"
)

const (
	origin  = bgp.RouterID(1) // AS 64500
	transA  = bgp.RouterID(2) // AS 64601, the AS we will poison
	transB  = bgp.RouterID(3) // AS 64602, the alternate
	watcher = bgp.RouterID(4) // AS 64700, observes which path it uses
)

func main() {
	net := bgp.NewNetwork()
	net.AddSpeaker(origin, 64500, "origin")
	net.AddSpeaker(transA, 64601, "transit-A")
	net.AddSpeaker(transB, 64602, "transit-B")
	net.AddSpeaker(watcher, 64700, "watcher")

	cust := func(provider, c bgp.RouterID) {
		net.Connect(provider, c,
			bgp.PeerConfig{ClassifyAs: bgp.ClassCustomer, ImportLocalPref: bgp.LocalPrefCustomer, ExportAllow: bgp.GaoRexfordExport(bgp.ClassCustomer)},
			bgp.PeerConfig{ClassifyAs: bgp.ClassProvider, ImportLocalPref: bgp.LocalPrefProvider, ExportAllow: bgp.GaoRexfordExport(bgp.ClassProvider)})
	}
	cust(transA, origin)
	cust(transB, origin)
	cust(transA, watcher)
	cust(transB, watcher)

	prefix := netutil.MustParsePrefix("203.0.113.0/24")

	show := func(label string) {
		best := net.Speaker(watcher).Best(prefix)
		if best == nil {
			fmt.Printf("%-28s watcher has NO route\n", label)
			return
		}
		fmt.Printf("%-28s watcher uses %s\n", label, best.Path)
	}

	fmt.Println("=== AS-path poisoning: steering around transit-A ===")
	fmt.Println()

	net.Originate(origin, prefix)
	net.RunToQuiescence()
	show("plain announcement:")
	fmt.Println("  (both transits carry the route; the watcher's tie-break picked one)")
	fmt.Println()

	// Poison transit-A: it discards the announcement by loop
	// detection, so the watcher can only hear the route via transit-B.
	net.OriginateWith(origin, prefix, bgp.OriginateOpts{Poison: []asn.AS{64601}})
	net.RunToQuiescence()
	show("poisoned against 64601:")
	if r := net.Speaker(transA).Best(prefix); r != nil {
		fmt.Printf("  unexpected: transit-A still holds %s\n", r.Path)
	} else {
		fmt.Println("  (transit-A dropped the route: its own ASN appears in the path)")
	}
	fmt.Println()

	// And back: lifting the poison restores both paths. This
	// announce/withdraw churn is exactly what the paper's prepending
	// schedule avoids being mistaken for (§3.3's route-flap-damping
	// hygiene applies to poisoning experiments too).
	net.Originate(origin, prefix)
	net.RunToQuiescence()
	show("poison lifted:")
}
