// Quickstart reproduces Figure 1 of the paper: Columbia receives
// routes to the same UCSD prefix via NYSERNet (R&E) and Cogent
// (commodity) with equal AS path lengths, and only a localpref policy
// makes the R&E choice deterministic.
//
// It builds the seven-AS scenario with the bgp package, runs it under
// the two policies (higher localpref on the R&E session vs equal
// localpref), and shows how the second policy leaves the decision to
// AS path length — the effect the paper's measurement method detects.
package main

import (
	"fmt"

	"repro/internal/asn"
	"repro/internal/bgp"
	"repro/internal/netutil"
)

const (
	ucsd      = bgp.RouterID(1) // AS 7377
	cenic     = bgp.RouterID(2) // AS 2152
	internet2 = bgp.RouterID(3) // AS 11537
	nysernet  = bgp.RouterID(4) // AS 3754
	columbia  = bgp.RouterID(5) // AS 14
	cogent    = bgp.RouterID(6) // AS 174
	level3    = bgp.RouterID(7) // AS 3356
)

func build(columbiaREPref uint32) *bgp.Network {
	net := bgp.NewNetwork()
	for _, s := range []struct {
		id   bgp.RouterID
		as   asn.AS
		name string
	}{
		{ucsd, 7377, "UCSD"}, {cenic, 2152, "CENIC"}, {internet2, 11537, "Internet2"},
		{nysernet, 3754, "NYSERNet"}, {columbia, 14, "Columbia"},
		{cogent, 174, "Cogent"}, {level3, 3356, "Level3"},
	} {
		net.AddSpeaker(s.id, s.as, s.name)
	}
	customer := func(provider, cust bgp.RouterID, lpAtCust uint32) {
		net.Connect(provider, cust,
			bgp.PeerConfig{ClassifyAs: bgp.ClassCustomer, ImportLocalPref: bgp.LocalPrefCustomer, ExportAllow: bgp.GaoRexfordExport(bgp.ClassCustomer)},
			bgp.PeerConfig{ClassifyAs: bgp.ClassProvider, ImportLocalPref: lpAtCust, ExportAllow: bgp.GaoRexfordExport(bgp.ClassProvider)})
	}
	customer(cenic, ucsd, bgp.LocalPrefProvider)
	customer(internet2, cenic, bgp.LocalPrefProvider)
	customer(internet2, nysernet, bgp.LocalPrefProvider)
	customer(level3, cenic, bgp.LocalPrefProvider)
	customer(cogent, columbia, bgp.LocalPrefProvider)
	customer(nysernet, columbia, columbiaREPref) // the knob under study
	peerCfg := bgp.PeerConfig{ClassifyAs: bgp.ClassPeer, ImportLocalPref: bgp.LocalPrefPeer, ExportAllow: bgp.GaoRexfordExport(bgp.ClassPeer)}
	net.Connect(level3, cogent, peerCfg, peerCfg)
	return net
}

func main() {
	prefix := netutil.MustParsePrefix("132.239.0.0/16") // UCSD

	fmt.Println("=== Figure 1: Columbia's choice between R&E and commodity routes ===")
	fmt.Println()

	for _, scenario := range []struct {
		name string
		lp   uint32
	}{
		{"Columbia sets a HIGHER localpref on the NYSERNet (R&E) session", bgp.LocalPrefProvider + 20},
		{"Columbia assigns EQUAL localpref to both sessions", bgp.LocalPrefProvider},
	} {
		fmt.Println(scenario.name)
		net := build(scenario.lp)
		net.Originate(ucsd, prefix)
		net.RunToQuiescence()

		col := net.Speaker(columbia)
		for _, r := range col.AdjInAll(prefix) {
			from := net.Speaker(r.From)
			fmt.Printf("  candidate via %-9s localpref=%d  AS path: %s (length %d)\n",
				from.Name, r.LocalPref, r.Path, r.Path.Len())
		}
		best := col.Best(prefix)
		_, step := bgp.Best(col.AdjInAll(prefix))
		fmt.Printf("  -> selected: %s (decided by %s)\n\n", best.Path, step)

		// Demonstrate AS-path-length sensitivity: prepend the R&E side.
		net.SetExportPrepend(nysernet, columbia, 1)
		net.RunToQuiescence()
		best = col.Best(prefix)
		fmt.Printf("  after NYSERNet prepends once, selected: %s\n", best.Path)
		if best.Path.First() == 3754 {
			fmt.Println("  (localpref makes Columbia insensitive to AS path length)")
		} else {
			fmt.Println("  (equal localpref: AS path length now decides — the paper's")
			fmt.Println("   'Switch' signature that reveals the policy)")
		}
		fmt.Println()
	}
}
